"""Applications of inline timestamps (paper Section 6 and Figure 4)."""

from repro.applications.causal_kv import (
    Operation,
    StoreConfig,
    StoreRunResult,
    TrafficReport,
    WriteRecord,
    run_store,
    verify_causal_reads,
)
from repro.applications.causal_broadcast import (
    Broadcast,
    CausalBroadcastProcess,
    check_causal_delivery,
)
from repro.applications.session import AnalysisSession, Snapshot
from repro.applications.detection_latency import (
    DetectionLag,
    detection_lag,
    first_detection_time,
)
from repro.applications.global_predicate import (
    count_consistent_cuts,
    definitely,
    enumerate_consistent_cuts,
    possibly,
    possibly_with_inline,
)
from repro.applications.monitor import (
    CutSample,
    FinalizedCutMonitor,
    cut_evolution,
)
from repro.applications.concurrent_updates import (
    ConflictReport,
    OnlineConcurrentUpdateDetector,
    conflict_resolution_status,
    find_conflicts,
)
from repro.applications.predicate import (
    DetectionResult,
    OnlineConjunctiveDetector,
    assignment_comparator,
    detect_conjunctive,
    detect_with_inline,
    oracle_comparator,
)
from repro.applications.recovery import (
    RecoveryComparison,
    periodic_checkpoints,
    recovery_line,
    recovery_line_lag,
)
from repro.applications.replay import is_causal_schedule, replay_schedule

__all__ = [
    "Operation",
    "StoreConfig",
    "StoreRunResult",
    "TrafficReport",
    "WriteRecord",
    "run_store",
    "verify_causal_reads",
    "ConflictReport",
    "OnlineConcurrentUpdateDetector",
    "conflict_resolution_status",
    "find_conflicts",
    "DetectionResult",
    "OnlineConjunctiveDetector",
    "assignment_comparator",
    "detect_conjunctive",
    "detect_with_inline",
    "oracle_comparator",
    "RecoveryComparison",
    "periodic_checkpoints",
    "recovery_line",
    "recovery_line_lag",
    "is_causal_schedule",
    "replay_schedule",
    "count_consistent_cuts",
    "definitely",
    "enumerate_consistent_cuts",
    "possibly",
    "possibly_with_inline",
    "CutSample",
    "FinalizedCutMonitor",
    "cut_evolution",
    "DetectionLag",
    "detection_lag",
    "first_detection_time",
    "Broadcast",
    "CausalBroadcastProcess",
    "check_causal_delivery",
    "AnalysisSession",
    "Snapshot",
]

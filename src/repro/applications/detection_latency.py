"""Detection latency: when does a predicate become detectable?

The paper's Section-6 argument is temporal: with inline timestamps a
predicate is detected on the finalized cut, so detection may *lag* the
online answer, but "if the predicate of interest becomes true, it would be
detected eventually".  This module measures that lag on simulation results:

- **online knowledge** at virtual time ``t``: all events that occurred by
  ``t`` (what a vector-clock-based checker sees);
- **inline knowledge** at ``t``: all events whose inline timestamps were
  finalized by ``t``.

:func:`first_detection_time` replays the corresponding notification stream
and returns the earliest time the weak conjunctive predicate is detectable;
:func:`detection_lag` packages the online/inline comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.applications.predicate import PredicateMarks, detect_conjunctive
from repro.core.events import EventId
from repro.core.happened_before import HappenedBeforeOracle
from repro.sim.runner import SimulationResult


def _knowledge_stream(
    result: SimulationResult, clock_name: Optional[str]
) -> List[Tuple[float, EventId]]:
    """(time, event) notifications: occurrences (online) or finalizations."""
    if clock_name is None:
        pairs = list(result.event_times.items())
    else:
        pairs = list(result.finalization_times[clock_name].items())
    return sorted(((t, eid) for eid, t in pairs), key=lambda x: (x[0], x[1]))


def first_detection_time(
    result: SimulationResult,
    marks: PredicateMarks,
    clock_name: Optional[str] = None,
    oracle: Optional[HappenedBeforeOracle] = None,
) -> Optional[float]:
    """Earliest virtual time the predicate is detectable, or ``None``.

    *clock_name* = ``None`` measures online knowledge (events count as
    known when they occur); a clock name measures inline knowledge (events
    count when that clock finalizes them).  Comparisons use the ground
    truth, which finalized characterizing timestamps agree with.
    """
    if oracle is None:
        oracle = HappenedBeforeOracle(result.execution)
    all_marked: Set[EventId] = {
        EventId(p, i) for p, idxs in marks.items() for i in idxs
    }
    known: Set[EventId] = set()
    relevant_known: Set[EventId] = set()
    for t, eid in _knowledge_stream(result, clock_name):
        known.add(eid)
        if eid in all_marked:
            relevant_known.add(eid)
        else:
            continue
        pruned = {
            p: [i for i in idxs if EventId(p, i) in known]
            for p, idxs in marks.items()
        }
        if any(not idxs for idxs in pruned.values()):
            continue
        outcome = detect_conjunctive(oracle.happened_before, pruned)
        if outcome.found:
            return t
    return None


@dataclass(frozen=True)
class DetectionLag:
    """Online vs inline first-detection comparison."""

    online_time: Optional[float]
    inline_time: Optional[float]

    @property
    def both_detected(self) -> bool:
        return self.online_time is not None and self.inline_time is not None

    @property
    def lag(self) -> Optional[float]:
        """Extra virtual time the inline detector needed (None if either
        side never detected)."""
        if not self.both_detected:
            return None
        return self.inline_time - self.online_time  # type: ignore[operator]


def detection_lag(
    result: SimulationResult,
    marks: PredicateMarks,
    clock_name: str,
    oracle: Optional[HappenedBeforeOracle] = None,
) -> DetectionLag:
    """Compare first-detection times of the same predicate.

    Invariants (asserted in tests): the inline detector never detects
    *earlier* than the online one, never detects something the online one
    would not, and — when every relevant event eventually finalizes —
    always catches up (the paper's "detected eventually").
    """
    if oracle is None:
        oracle = HappenedBeforeOracle(result.execution)
    online = first_detection_time(result, marks, None, oracle)
    inline = first_detection_time(result, marks, clock_name, oracle)
    return DetectionLag(online_time=online, inline_time=inline)

"""Possibly/Definitely detection for general global predicates.

Weak conjunctive predicates (:mod:`repro.applications.predicate`) cover the
common case; for *arbitrary* global predicates the classic Cooper–Marzullo
construction explores the lattice of consistent cuts:

- ``possibly(Φ)`` — some consistent cut satisfies Φ (the computation could
  have passed through a Φ-state);
- ``definitely(Φ)`` — every path from the empty cut to the full cut passes
  through a Φ-cut (the computation must have passed through one).

Both are decided exactly by a level-order walk over consistent cuts, using
the ground-truth vector clocks for O(n) successor checks.  The lattice can
be exponential in general — that is inherent to the problem — so these
detectors are meant for the modest executions a debugger examines.

Every walker accepts either oracle flavor: the batch
:class:`~repro.core.happened_before.HappenedBeforeOracle` over a completed
execution, or a live :class:`~repro.core.incremental.IncrementalHBOracle`
mid-run — the lattice is then explored up to the events appended so far,
and a ``possibly`` witness found online is final (appends only grow the
lattice upward).

Inline-timestamp integration (paper Section 6): pass ``within`` to restrict
the walk to the sublattice of cuts inside the currently *finalized*
consistent cut.  A ``possibly`` witness found there is final (the sublattice
only grows); a negative answer may flip as more timestamps finalize —
exactly the paper's "the cut in which predicates can be detected will
grow" behaviour, which :func:`possibly_with_inline` exposes.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Set, Tuple

from repro.clocks.replay import TimestampAssignment
from repro.core.cuts import Cut, empty_cut, full_cut, max_consistent_cut_within
from repro.core.events import EventId
from repro.core.happened_before import HappenedBeforeOracle
from repro.core.incremental import (
    AnyOracle,
    IncrementalHBOracle,
    as_batch_oracle,
)

#: a global predicate over consistent cuts (entry p = events taken at p)
GlobalPredicate = Callable[[Cut], bool]


def _n_processes(oracle: AnyOracle) -> int:
    """Process count for either oracle flavor."""
    if isinstance(oracle, IncrementalHBOracle):
        return oracle.n_processes
    return oracle.execution.n_processes


def _limit_cut(oracle: AnyOracle) -> Cut:
    """The full cut: every event seen so far (the live frontier when the
    oracle is incremental and the run is still streaming)."""
    if isinstance(oracle, IncrementalHBOracle):
        return tuple(
            oracle.event_count(p) for p in range(oracle.n_processes)
        )
    return full_cut(oracle)


def _successors(
    oracle: AnyOracle, cut: Cut, limit: Cut
) -> Iterator[Cut]:
    """Consistent cuts reachable by admitting one more event, within *limit*.

    Event identity is positional — the next event at process ``p`` beyond
    ``cut[p]`` is ``EventId(p, cut[p] + 1)`` by the 1-based consecutive
    indexing — so the walk needs only vector clocks, which both oracle
    flavors provide; no :class:`Execution` object is required and the
    lattice can be explored against a still-running oracle.
    """
    n = _n_processes(oracle)
    for p in range(n):
        if cut[p] >= limit[p]:
            continue
        vc = oracle.vector_clock(EventId(p, cut[p] + 1))
        if all(vc[q] <= cut[q] for q in range(n) if q != p):
            yield cut[:p] + (cut[p] + 1,) + cut[p + 1 :]


def enumerate_consistent_cuts(
    oracle: AnyOracle,
    within: Optional[Cut] = None,
) -> Iterator[Cut]:
    """All consistent cuts (within *limit*), in level order from empty."""
    limit = within if within is not None else _limit_cut(oracle)
    level: Set[Cut] = {empty_cut(_n_processes(oracle))}
    while level:
        nxt: Set[Cut] = set()
        for cut in sorted(level):
            yield cut
            nxt.update(_successors(oracle, cut, limit))
        level = nxt


def possibly(
    oracle: AnyOracle,
    predicate: GlobalPredicate,
    within: Optional[Cut] = None,
) -> Optional[Cut]:
    """A consistent cut satisfying *predicate*, or ``None``.

    Walks the lattice level by level and stops at the first witness, so the
    returned cut has minimum total event count among witnesses.
    """
    for cut in enumerate_consistent_cuts(oracle, within):
        if predicate(cut):
            return cut
    return None


def definitely(
    oracle: AnyOracle,
    predicate: GlobalPredicate,
    within: Optional[Cut] = None,
) -> bool:
    """Whether every path from the empty to the limit cut hits a Φ-cut.

    Standard construction: restrict the lattice to ¬Φ cuts; Φ holds
    *definitely* iff the limit cut is unreachable through ¬Φ cuts alone
    (including the endpoints — a Φ-endpoint trivially intercepts paths).
    """
    limit = within if within is not None else _limit_cut(oracle)
    start = empty_cut(_n_processes(oracle))
    if predicate(start) or predicate(limit):
        return True
    if start == limit:
        return False  # single-cut lattice that fails the predicate
    frontier: Set[Cut] = {start}
    seen: Set[Cut] = {start}
    while frontier:
        nxt: Set[Cut] = set()
        for cut in frontier:
            for succ in _successors(oracle, cut, limit):
                if succ in seen or predicate(succ):
                    continue
                if succ == limit:
                    return False
                seen.add(succ)
                nxt.add(succ)
        frontier = nxt
    # every ¬Φ path dead-ends before the limit cut — note a dead end is
    # impossible in a full lattice walk unless a Φ-cut blocked it
    return True


def count_consistent_cuts(
    oracle: AnyOracle, within: Optional[Cut] = None
) -> int:
    """Size of the (restricted) consistent-cut lattice."""
    return sum(1 for _ in enumerate_consistent_cuts(oracle, within))


def possibly_with_inline(
    assignment: TimestampAssignment,
    predicate: GlobalPredicate,
    finalized: Optional[Set[EventId]] = None,
    oracle: Optional[AnyOracle] = None,
) -> Tuple[Optional[Cut], Cut]:
    """``possibly`` over the finalized sublattice (Section-6 recipe).

    Returns ``(witness_or_None, finalized_cut)``.  A witness is definitive;
    ``None`` only means "not detectable *yet*" — rerun after more events
    finalize.  The consistency machinery uses the ground-truth oracle (the
    checker process in a real deployment would use the finalized inline
    timestamps themselves, which agree with it by Theorem 4.1).
    """
    if oracle is None:
        oracle = HappenedBeforeOracle(assignment.execution)
    else:
        # the cut machinery needs the batch bitset surface; freezing an
        # incremental oracle reuses its rows instead of rebuilding
        oracle = as_batch_oracle(oracle, assignment.execution)
    if finalized is None:
        finalized = set(assignment.finalized_during_run)
    limit = max_consistent_cut_within(oracle, lambda e: e in finalized)
    return possibly(oracle, predicate, within=limit), limit

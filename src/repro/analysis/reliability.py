"""Transport-reliability accounting for faulty simulation runs.

Condenses the fault-injection and reliable-control-transport counters a
:class:`~repro.sim.runner.SimulationResult` collects into one summary per
algorithm, for tables (``repro chaos``) and assertions (E16).  The
interesting derived quantities:

- :attr:`ReliabilitySummary.retransmission_rate` — extra datagram copies
  per logical control message, the price of reliability;
- :attr:`ReliabilitySummary.delivery_success` — fraction of control
  messages that were eventually delivered (not abandoned), which bounds how
  much finalization can happen during the run rather than at termination.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.runner import SimulationResult


@dataclass(frozen=True)
class ReliabilitySummary:
    """Fault/transport counters for one algorithm in one run."""

    control_messages: int
    retransmissions: int
    duplicates_suppressed: int
    acks: int
    abandoned: int
    dropped_app: int
    dropped_control: int
    duplicate_app_deliveries: int
    crash_dropped_app: int
    suppressed_events: int

    @property
    def retransmission_rate(self) -> float:
        """Retransmitted copies per logical control message."""
        if self.control_messages == 0:
            return 0.0
        return self.retransmissions / self.control_messages

    @property
    def delivery_success(self) -> float:
        """Fraction of control messages not abandoned by the transport."""
        if self.control_messages == 0:
            return 1.0
        return 1.0 - self.abandoned / self.control_messages


def summarize_reliability(
    result: SimulationResult, clock_name: str
) -> ReliabilitySummary:
    """Collect the reliability counters relevant to *clock_name*."""
    stats = result.stats[clock_name]
    return ReliabilitySummary(
        control_messages=stats.control_messages,
        retransmissions=stats.control_retransmissions,
        duplicates_suppressed=stats.control_duplicates_suppressed,
        acks=stats.control_acks,
        abandoned=stats.control_abandoned,
        dropped_app=result.dropped_app_messages,
        dropped_control=result.dropped_control_messages,
        duplicate_app_deliveries=result.duplicate_app_deliveries,
        crash_dropped_app=result.crash_dropped_app_messages,
        suppressed_events=result.suppressed_events,
    )

"""Analytic size models, latency statistics, and report formatting."""

from repro.analysis.latency import (
    LatencySummary,
    expected_star_finalization_latency,
    finalization_latency_cdf,
    finalized_fraction_curve,
    mean_inflight_events,
    percentile,
    summarize_latencies,
)
from repro.analysis.reliability import (
    ReliabilitySummary,
    summarize_reliability,
)
from repro.analysis.overhead_model import (
    expected_control_elements,
    expected_control_messages,
    expected_piggyback_elements,
    overhead_ratio_vs_vector,
)
from repro.analysis.reports import format_series, format_table
from repro.analysis.size_model import (
    SizeComparison,
    compare_sizes,
    counter_bits,
    crossover_cover_size,
    id_bits,
    inline_bits,
    inline_elements,
    inline_wins_bits,
    inline_wins_elements,
    size_sweep,
    vector_bits,
    vector_elements,
)

__all__ = [
    "LatencySummary",
    "expected_star_finalization_latency",
    "finalization_latency_cdf",
    "finalized_fraction_curve",
    "mean_inflight_events",
    "percentile",
    "summarize_latencies",
    "ReliabilitySummary",
    "summarize_reliability",
    "expected_control_elements",
    "expected_control_messages",
    "expected_piggyback_elements",
    "overhead_ratio_vs_vector",
    "format_series",
    "format_table",
    "SizeComparison",
    "compare_sizes",
    "counter_bits",
    "crossover_cover_size",
    "id_bits",
    "inline_bits",
    "inline_elements",
    "inline_wins_bits",
    "inline_wins_elements",
    "size_sweep",
    "vector_bits",
    "vector_elements",
]

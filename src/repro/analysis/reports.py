"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper's claims describe;
these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
) -> str:
    """Render a GitHub-flavoured markdown table (used by metric reports)."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def format_series(
    points: Sequence[tuple],
    x_label: str = "x",
    y_label: str = "y",
    width: int = 40,
) -> str:
    """Render an (x, y) series as an ASCII sparkline table (y in [0, 1+])."""
    if not points:
        return "(empty series)"
    y_max = max(y for _x, y in points) or 1.0
    lines = [f"{x_label:>10} | {y_label}"]
    for x, y in points:
        bar = "#" * int(round(width * y / y_max))
        lines.append(f"{x:>10.2f} | {y:.3f} {bar}")
    return "\n".join(lines)

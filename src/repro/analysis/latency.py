"""Finalization-latency statistics (experiment E8).

Inline timestamps trade size for a delay before each timestamp becomes
permanent.  The paper argues the delay is one round trip with the adjacent
cover processes, so in a steadily communicating system it is small and most
events are finalized at any given moment.  These helpers summarize the
latencies a :class:`~repro.sim.runner.SimulationResult` records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.events import EventId
from repro.sim.runner import SimulationResult


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of finalization latencies (virtual time)."""

    count: int
    finalized_fraction: float  # of all events, finalized during the run
    mean: float
    median: float
    p95: float
    maximum: float

    @classmethod
    def empty(cls) -> "LatencySummary":
        return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted values; 0.0 for empty input."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    idx = min(len(sorted_values) - 1, max(0, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[idx]


def summarize_latencies(
    result: SimulationResult, clock_name: str
) -> LatencySummary:
    """Summary of event→permanent-timestamp lag for one algorithm."""
    lat = sorted(result.finalization_latencies(clock_name).values())
    total = result.execution.n_events
    if not lat:
        return LatencySummary.empty()
    return LatencySummary(
        count=len(lat),
        finalized_fraction=len(lat) / total if total else 1.0,
        mean=sum(lat) / len(lat),
        median=percentile(lat, 0.5),
        p95=percentile(lat, 0.95),
        maximum=lat[-1],
    )


def finalized_fraction_curve(
    result: SimulationResult,
    clock_name: str,
    n_points: int = 20,
) -> List[Tuple[float, float]]:
    """``(time, fraction of occurred events already finalized)`` series.

    The paper's Section-6 picture: the finalized consistent cut trails the
    execution frontier and catches up as round trips complete.  At each
    sample instant ``t`` the fraction is ``|{e: finalized by t}| /
    |{e: occurred by t}|``.
    """
    if n_points < 2:
        raise ValueError("need at least 2 sample points")
    duration = result.duration
    event_times = sorted(result.event_times.values())
    fin_times = sorted(result.finalization_times[clock_name].values())
    out: List[Tuple[float, float]] = []
    for i in range(n_points):
        t = duration * i / (n_points - 1)
        occurred = _count_leq(event_times, t)
        finalized = _count_leq(fin_times, t)
        frac = 1.0 if occurred == 0 else finalized / occurred
        out.append((t, frac))
    return out


def finalization_latency_cdf(
    result: SimulationResult, clock_name: str
) -> List[Tuple[float, float]]:
    """Empirical CDF of finalization latencies, normalized over *all* events.

    Each point is ``(latency, fraction of all events finalized within that
    latency during the run)``.  Because the denominator is the total event
    count, the curve plateaus below 1.0 exactly when some events only
    finalize at termination — under faulty control channels the height of
    that plateau is the online-finalization coverage, the quantity the
    reliable control transport is designed to protect (experiment E16).
    """
    total = result.execution.n_events
    if total == 0:
        return []
    lat = sorted(result.finalization_latencies(clock_name).values())
    return [(v, (i + 1) / total) for i, v in enumerate(lat)]


def _count_leq(sorted_values: Sequence[float], t: float) -> int:
    lo, hi = 0, len(sorted_values)
    while lo < hi:
        mid = (lo + hi) // 2
        if sorted_values[mid] <= t:
            lo = mid + 1
        else:
            hi = mid
    return lo


def expected_star_finalization_latency(
    rate: float,
    p_local: float,
    delay: float,
) -> float:
    """Back-of-envelope model for radial finalization latency on a star.

    A radial event's timestamp finalizes once (a) the process sends its
    next message to the centre — expected wait ``1/(rate·(1-p_local))``
    under exponential inter-arrival actions of which a ``1-p_local``
    fraction are sends — and (b) that message plus the control reply cross
    the network: ``2·delay``.  Centre events finalize instantly, so the
    system-wide mean is lower; the model bounds the radial mean and tracks
    its scaling in the E8 rate sweep (asserted there within a loose
    factor).
    """
    if rate <= 0 or delay < 0:
        raise ValueError("rate must be positive and delay non-negative")
    if not 0.0 <= p_local < 1.0:
        raise ValueError("p_local must be in [0, 1)")
    send_rate = rate * (1.0 - p_local)
    return 1.0 / send_rate + 2.0 * delay


def mean_inflight_events(result: SimulationResult, clock_name: str) -> float:
    """Time-averaged number of events awaiting finalization.

    By Little's law this equals (finalization rate) × (mean latency); it is
    the "recovery-line gap" the paper's Section 1 alludes to, in event
    units.
    """
    fin = result.finalization_times[clock_name]
    if result.duration <= 0:
        return 0.0
    total_wait = sum(
        fin[eid] - result.event_times[eid] for eid in fin
    )
    return total_wait / result.duration

"""Analytic communication-overhead model for the inline algorithms.

The inline schemes add two costs on top of application traffic:

- **piggyback**: every application message carries ``|VC| + 2`` scalar
  elements (sender id, counter, mpre vector) — versus ``n`` for vector
  clocks and 1 for Lamport clocks;
- **control**: every application message received *by* a cover process
  *from* a non-cover process triggers one acknowledgement of 3 elements
  (sequence number, send index, receive index).

Given a topology and a traffic matrix these costs are exact, not
approximate; :func:`expected_control_messages` and
:func:`expected_piggyback_elements` compute them, and the tests check the
simulator's measured statistics against them to the message.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

from repro.topology.graph import CommunicationGraph

#: traffic[u, v] = number of application messages sent from u to v
TrafficMatrix = Mapping[Tuple[int, int], int]


def expected_control_messages(
    graph: CommunicationGraph,
    cover: Sequence[int],
    traffic: TrafficMatrix,
) -> int:
    """Control messages the cover inline algorithm emits for *traffic*.

    One per delivered application message whose sender is outside the
    cover and whose receiver is inside it (cover→cover and cover→non-cover
    messages need no acknowledgement).
    """
    cset = set(cover)
    if not graph.is_vertex_cover(cset):
        raise ValueError("not a vertex cover")
    total = 0
    for (src, dst), count in traffic.items():
        if count < 0:
            raise ValueError("negative traffic entry")
        if not graph.has_edge(src, dst):
            raise ValueError(f"traffic on non-edge ({src}, {dst})")
        if src not in cset and dst in cset:
            total += count
    return total


def expected_piggyback_elements(
    cover_size: int,
    n_messages: int,
) -> int:
    """Scalar elements piggybacked on *n_messages* application messages:
    ``(|VC| + 2)`` per message (sender id, counter, mpre vector)."""
    if cover_size < 0 or n_messages < 0:
        raise ValueError("arguments must be non-negative")
    return (cover_size + 2) * n_messages


def expected_control_elements(n_control_messages: int) -> int:
    """3 elements per control message: (sequence, send idx, receive idx)."""
    if n_control_messages < 0:
        raise ValueError("argument must be non-negative")
    return 3 * n_control_messages


def overhead_ratio_vs_vector(
    n_processes: int, cover_size: int, control_fraction: float
) -> float:
    """Total piggyback+control elements per message, relative to vector
    clocks' ``n`` per message.

    *control_fraction* is the fraction of application messages that
    trigger a control message (non-cover → cover deliveries).  Below 1 the
    inline scheme wins on communication whenever
    ``|VC| + 2 + 3·control_fraction < n``.
    """
    if not 0.0 <= control_fraction <= 1.0:
        raise ValueError("control_fraction must be a probability")
    if n_processes < 1 or cover_size < 0:
        raise ValueError("invalid sizes")
    inline = cover_size + 2 + 3.0 * control_fraction
    return inline / n_processes

"""Analytic timestamp-size models (Theorems 4.2, 4.3) and the crossover.

The paper's headline size claims:

- an inline timestamp holds at most ``2·|VC| + 2`` elements (Thm 4.2);
- with at most ``K`` events per process it needs at most
  ``(2·|VC| + 1)·log₂(K+1) + log₂ n`` bits (Thm 4.3);
- a standard vector clock holds ``n`` elements, i.e. ``n·log₂(K+1)`` bits —
  so the inline scheme wins whenever ``|VC| < n/2 − 1``.

These functions are the analytic side of experiments E1/E2; the benchmarks
measure the same quantities from real runs and compare.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence


def counter_bits(max_events: int) -> int:
    """Bits for one counter element: ``ceil(log₂(K+1))``, at least 1."""
    if max_events < 0:
        raise ValueError("max_events must be >= 0")
    return max(1, math.ceil(math.log2(max_events + 1)))


def id_bits(n_processes: int) -> int:
    """Bits for a process id: ``ceil(log₂ n)``, at least 1."""
    if n_processes < 1:
        raise ValueError("need at least one process")
    return max(1, math.ceil(math.log2(n_processes)))


def inline_elements(cover_size: int) -> int:
    """Theorem 4.2: elements in an inline timestamp."""
    if cover_size < 0:
        raise ValueError("cover size must be >= 0")
    return 2 * cover_size + 2


def inline_bits(n_processes: int, max_events: int, cover_size: int) -> int:
    """Theorem 4.3: bits in an inline timestamp."""
    return (2 * cover_size + 1) * counter_bits(max_events) + id_bits(
        n_processes
    )


def vector_elements(n_processes: int) -> int:
    """Standard vector clock: one integer per process."""
    if n_processes < 1:
        raise ValueError("need at least one process")
    return n_processes


def vector_bits(n_processes: int, max_events: int) -> int:
    """Standard vector clock size in bits."""
    return n_processes * counter_bits(max_events)


def inline_wins_elements(n_processes: int, cover_size: int) -> bool:
    """Element-count crossover: the paper's ``|VC| < n/2 − 1`` condition."""
    return inline_elements(cover_size) < vector_elements(n_processes)


def inline_wins_bits(n_processes: int, max_events: int, cover_size: int) -> bool:
    """Bit-count crossover (accounts for the id element's log n bits)."""
    return inline_bits(n_processes, max_events, cover_size) < vector_bits(
        n_processes, max_events
    )


def crossover_cover_size(n_processes: int, max_events: int) -> int:
    """Largest cover size for which the inline timestamp is smaller (bits).

    Returns -1 when no cover size (even 0) wins — only possible for tiny
    systems where the id element dominates.
    """
    best = -1
    for vc in range(n_processes + 1):
        if inline_wins_bits(n_processes, max_events, vc):
            best = vc
        else:
            break
    return best


@dataclass(frozen=True)
class SizeComparison:
    """One row of the E2 size table."""

    n_processes: int
    max_events: int
    cover_size: int
    inline_elements: int
    vector_elements: int
    inline_bits: int
    vector_bits: int

    @property
    def inline_smaller(self) -> bool:
        return self.inline_bits < self.vector_bits

    @property
    def bit_ratio(self) -> float:
        return self.inline_bits / self.vector_bits


def compare_sizes(
    n_processes: int, max_events: int, cover_size: int
) -> SizeComparison:
    """Build one analytic comparison row."""
    return SizeComparison(
        n_processes=n_processes,
        max_events=max_events,
        cover_size=cover_size,
        inline_elements=inline_elements(cover_size),
        vector_elements=vector_elements(n_processes),
        inline_bits=inline_bits(n_processes, max_events, cover_size),
        vector_bits=vector_bits(n_processes, max_events),
    )


def size_sweep(
    n_values: Sequence[int],
    k_values: Sequence[int],
    cover_for_n: Optional[dict] = None,
) -> List[SizeComparison]:
    """Cartesian sweep of the analytic model (default cover = 1, a star)."""
    out = []
    for n in n_values:
        vc = (cover_for_n or {}).get(n, 1)
        for k in k_values:
            out.append(compare_sizes(n, k, vc))
    return out

"""Counterexample shrinking for conformance mismatches.

Delta debugging (Zeller's ddmin, specialized to op lists): given a failing
execution as the flat op list produced by
:func:`repro.core.random_executions.random_ops`, repeatedly delete chunks
of ops — halving the chunk size down to single ops — and keep any deletion
after which the failure still reproduces.  Deleting a send orphans its
receive; :func:`normalize_ops` repairs candidates, so every tested
candidate is a valid execution.

"Still fails" is deliberately coarse: a candidate counts if it produces
*any* mismatch with the same ``(invariant, scheme)`` pair as the original,
not the same detail string — the goal is the smallest execution
demonstrating the bug class, and the exact pair that diverges usually
changes as events disappear.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.core.random_executions import Op, normalize_ops
from repro.topology.graph import CommunicationGraph

#: safety valve: give up shrinking after this many predicate evaluations
MAX_PROBES = 400


def shrink_ops(
    ops: Sequence[Op],
    still_fails: Callable[[Sequence[Op]], bool],
    max_probes: int = MAX_PROBES,
) -> List[Op]:
    """Minimize *ops* while *still_fails* holds.

    The returned list is 1-minimal with respect to single-op deletion
    (unless the probe budget runs out first): removing any one remaining op
    makes the failure disappear.
    """
    current = normalize_ops(ops)
    if not still_fails(current):
        # the normalized original does not reproduce — nothing to do
        return list(ops)
    probes = 0
    chunk = max(1, len(current) // 2)
    while probes < max_probes:
        removed_any = False
        start = 0
        while start < len(current) and probes < max_probes:
            candidate = normalize_ops(
                current[:start] + current[start + chunk:]
            )
            probes += 1
            if len(candidate) < len(current) and still_fails(candidate):
                current = candidate
                removed_any = True
                # same start now points at fresh ops; retry there
            else:
                start += chunk
        if chunk > 1:
            chunk = max(1, chunk // 2)
        elif not removed_any:
            break  # single-op pass reached a fixpoint: 1-minimal
    return current


def shrink_mismatch(graph: CommunicationGraph, mismatch, max_probes: int = MAX_PROBES):
    """Shrink a :class:`~repro.conformance.fuzzer.Mismatch` in place.

    Returns a new ``Mismatch`` whose ``ops`` are minimized (and whose
    ``detail`` is re-derived from the shrunken execution); the original is
    returned unchanged if shrinking cannot reproduce the failure.
    """
    from repro.conformance.fuzzer import Mismatch, check_execution

    target = (mismatch.invariant, mismatch.scheme)
    witnesses: dict = {}

    def still_fails(candidate: Sequence[Op]) -> bool:
        try:
            found = check_execution(
                graph, candidate, fifo=mismatch.fifo,
                context=mismatch.context,
            )
        except Exception:
            return False
        for mm in found:
            if (mm.invariant, mm.scheme) == target:
                witnesses[tuple(tuple(op) for op in candidate)] = mm
                return True
        return False

    small = shrink_ops(mismatch.ops, still_fails, max_probes=max_probes)
    key = tuple(tuple(op) for op in small)
    if key not in witnesses:
        return mismatch
    witness = witnesses[key]
    return Mismatch(
        invariant=witness.invariant,
        scheme=witness.scheme,
        detail=witness.detail,
        n_processes=mismatch.n_processes,
        edges=mismatch.edges,
        ops=key,
        fifo=mismatch.fifo,
        context={**dict(mismatch.context), "shrunk_from": len(mismatch.ops)},
    )

"""Differential conformance fuzzing across clock schemes and oracles.

One randomized execution at a time, :func:`check_execution` replays every
legally applicable scheme from :mod:`repro.conformance.registry` and both
causality-oracle flavors, then cross-checks four invariants:

1. **exact-vs-hb** — for every scheme claiming
   ``characterizes_causality``, ``precedes`` must agree with ground-truth
   happened-before on all event pairs, and the word-parallel
   ``precedes_matrix`` path must agree bit-for-bit with the pairwise path
   (:meth:`TimestampAssignment.validate` vs ``validate_pairwise``).
2. **oracle-differential** — an :class:`IncrementalHBOracle` streamed over
   the same events, with queries interleaved between appends, must answer
   identically to the batch :class:`HappenedBeforeOracle`, and its
   ``freeze()`` must produce byte-identical causal-past rows.
3. **finalization-monotonic** — for inline schemes, a ``⊥`` timestamp that
   finalizes never changes afterwards, and ``finalize_at_termination`` from
   *any* prefix of the run both preserves already-final timestamps and
   yields an exact characterization of the prefix's happened-before.
4. **one-sided** — inexact baselines (lamport, plausible, hlc) must stay
   *consistent* (``e -> f ⟹ ts(e) < ts(f)``); they may overclaim but never
   miss a causal edge.
5. **backend-differential** — the numpy array kernel
   (:mod:`repro.core.npkernel`) must answer byte-identically to the pure
   packed-int kernel: causal-past rows, relation counts, vector clocks,
   downward closures, validation reports, and the rows produced by an
   incremental oracle frozen onto the numpy backend mid-hand-off.  Skipped
   silently when numpy is unavailable (the pure kernel is then the only
   one to check) or when ``backend="pure"`` pins the whole run.
6. **store-differential** — the columnar event store
   (:mod:`repro.core.colstore`) replaying the same ops must be
   indistinguishable from the object model: identical events, messages,
   and delivery order; byte-identical causal-past rows and validation
   reports through an execution built on the columnar store; and the
   batched append path of :class:`IncrementalHBOracle` (pure engine
   always, numpy engine when available) must answer and ``freeze()``
   identically to the per-op path with queries interleaved mid-stream.

Failures come back as :class:`Mismatch` records carrying the generating op
list, ready for the shrinker and the JSONL report.  :func:`fuzz` drives
seeded trials over star/tree/connected topologies, mixing in fault
schedules from :mod:`repro.faults` so undelivered-message paths get
exercised deliberately rather than incidentally.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bench import cell_seed
from repro.clocks.replay import replay_one
from repro.clocks.vector import VectorClock
from repro.conformance.registry import (
    SchemeSpec,
    schemes_for,
    star_center_of,
)
from repro.core import HappenedBeforeOracle
from repro.core.backend import use_backend
from repro.core.execution import ExecutionBuilder
from repro.core.happened_before import downward_closure
from repro.core.incremental import IncrementalHBOracle
from repro.core.random_executions import (
    Op,
    execution_from_ops,
    random_ops,
)
from repro.faults.models import FaultModel, GilbertElliottLoss, PartitionFault
from repro.topology import generators
from repro.topology.graph import CommunicationGraph

#: invariant identifiers, used in Mismatch.invariant and JSONL records
INVARIANTS = (
    "exact-vs-hb",
    "matrix-vs-pairwise",
    "oracle-differential",
    "finalization-monotonic",
    "one-sided",
    "backend-differential",
    "store-differential",
)

#: check_execution backend modes: "auto"/"old-vs-new" run the
#: backend-differential invariant when numpy is available (for
#: "old-vs-new" the caller asserts availability up front); "pure"/"numpy"
#: pin every oracle in the run to that kernel
BACKEND_MODES = ("auto", "pure", "numpy", "old-vs-new")


@dataclass(frozen=True)
class Mismatch:
    """One observed conformance violation, with enough state to replay it."""

    invariant: str
    scheme: str  # clock name, or "oracle" for invariant 2
    detail: str
    n_processes: int
    edges: Tuple[Tuple[int, int], ...]
    ops: Tuple[Op, ...]
    fifo: bool
    context: Mapping[str, Any] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        """A JSON-serializable record for the mismatch report."""
        return {
            "invariant": self.invariant,
            "scheme": self.scheme,
            "detail": self.detail,
            "n_processes": self.n_processes,
            "edges": [list(e) for e in self.edges],
            "ops": [list(op) for op in self.ops],
            "fifo": self.fifo,
            **dict(self.context),
        }


@dataclass
class ConformanceReport:
    """Outcome of a fuzzing campaign."""

    trials: int = 0
    events_checked: int = 0
    checks: Dict[str, int] = field(default_factory=dict)
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def count(self, invariant: str, n: int = 1) -> None:
        self.checks[invariant] = self.checks.get(invariant, 0) + n


def _mk(
    invariant: str,
    scheme: str,
    detail: str,
    graph: CommunicationGraph,
    ops: Sequence[Op],
    fifo: bool,
    context: Mapping[str, Any],
) -> Mismatch:
    return Mismatch(
        invariant=invariant,
        scheme=scheme,
        detail=detail,
        n_processes=graph.n_vertices,
        edges=tuple(graph.edges),
        ops=tuple(tuple(op) for op in ops),
        fifo=fifo,
        context=dict(context),
    )


#: Mismatch fields serialized at the top level of a record; everything
#: else in a record is flattened context (see Mismatch.to_record)
_RECORD_FIELDS = (
    "invariant", "scheme", "detail", "n_processes", "edges", "ops", "fifo",
)


def mismatch_from_record(record: Mapping[str, Any]) -> Mismatch:
    """Rebuild a :class:`Mismatch` from its :meth:`~Mismatch.to_record` dict.

    Ops are flat tuples of scalars and edges are int pairs, so the JSON
    round trip is lossless — this is what lets fabric workers ship
    mismatches home as plain records and the coordinator reassemble the
    exact campaign report.
    """
    return Mismatch(
        invariant=record["invariant"],
        scheme=record["scheme"],
        detail=record["detail"],
        n_processes=record["n_processes"],
        edges=tuple(tuple(e) for e in record["edges"]),
        ops=tuple(tuple(op) for op in record["ops"]),
        fifo=record["fifo"],
        context={
            k: v for k, v in record.items() if k not in _RECORD_FIELDS
        },
    )


# ----------------------------------------------------------------------
# invariants 1 + 4: scheme vs ground truth, matrix vs pairwise
# ----------------------------------------------------------------------
def _check_schemes(
    graph, ops, execution, oracle, specs, center, fifo, context, report
):
    out: List[Mismatch] = []
    for spec in specs:
        clock = spec.build(graph, center)
        try:
            asg = replay_one(execution, clock)
        except Exception as exc:  # a crash is a conformance failure too
            out.append(_mk(
                "exact-vs-hb" if spec.exact else "one-sided", spec.name,
                f"replay raised {exc!r}", graph, ops, fifo, context,
            ))
            continue
        rep_m = asg.validate(oracle)
        rep_p = asg.validate_pairwise(oracle)
        report.count("matrix-vs-pairwise")
        if (rep_m.false_negatives != rep_p.false_negatives
                or rep_m.false_positives != rep_p.false_positives):
            out.append(_mk(
                "matrix-vs-pairwise", spec.name,
                f"matrix path fn={len(rep_m.false_negatives)} "
                f"fp={len(rep_m.false_positives)} vs pairwise "
                f"fn={len(rep_p.false_negatives)} "
                f"fp={len(rep_p.false_positives)}",
                graph, ops, fifo, context,
            ))
        if spec.exact:
            report.count("exact-vs-hb")
            if not rep_p.characterizes:
                fn = rep_p.false_negatives[:3]
                fp = rep_p.false_positives[:3]
                out.append(_mk(
                    "exact-vs-hb", spec.name,
                    f"not a characterization: false_negatives={fn} "
                    f"false_positives={fp}",
                    graph, ops, fifo, context,
                ))
        else:
            report.count("one-sided")
            if not rep_p.is_consistent:
                out.append(_mk(
                    "one-sided", spec.name,
                    f"missed causal pairs: {rep_p.false_negatives[:3]}",
                    graph, ops, fifo, context,
                ))
    return out


# ----------------------------------------------------------------------
# invariant 2: streaming oracle vs batch oracle
# ----------------------------------------------------------------------
def _check_oracles(graph, ops, execution, oracle, fifo, context, report):
    out: List[Mismatch] = []
    report.count("oracle-differential")
    inc = IncrementalHBOracle(graph.n_vertices)
    qrng = random.Random(len(ops) * 2654435761 % (2**31))
    seen: List = []
    for ev in execution.delivery_order():
        if ev.is_receive:
            inc.append_receive(ev.eid, execution.send_of(ev).eid)
        else:
            inc.append_event(ev)
        seen.append(ev.eid)
        if len(seen) >= 2 and qrng.random() < 0.4:
            a, b = qrng.sample(seen, 2)
            # happened-before between already-appended events is stable, so
            # the full-execution batch oracle is the correct reference even
            # mid-stream
            if inc.precedes(a, b) != oracle.happened_before(a, b):
                out.append(_mk(
                    "oracle-differential", "oracle",
                    f"precedes({a}, {b}) diverges mid-stream",
                    graph, ops, fifo, context,
                ))
            if inc.causal_past(a) != oracle.causal_past(a):
                out.append(_mk(
                    "oracle-differential", "oracle",
                    f"causal_past({a}) diverges mid-stream",
                    graph, ops, fifo, context,
                ))
    frozen = inc.freeze(execution)
    if frozen.past_masks() != oracle.past_masks():
        out.append(_mk(
            "oracle-differential", "oracle",
            "freeze() causal-past rows differ from batch oracle",
            graph, ops, fifo, context,
        ))
    if inc.relation_counts() != oracle.relation_counts():
        out.append(_mk(
            "oracle-differential", "oracle",
            "relation_counts diverge after full ingest",
            graph, ops, fifo, context,
        ))
    for eid in seen:
        if frozen.vector_clock(eid) != oracle.vector_clock(eid):
            out.append(_mk(
                "oracle-differential", "oracle",
                f"vector_clock({eid}) differs after freeze",
                graph, ops, fifo, context,
            ))
            break
    return out


# ----------------------------------------------------------------------
# invariant 3: inline finalization monotonicity, from every prefix
# ----------------------------------------------------------------------
def _check_finalization(
    graph, ops, specs, center, fifo, context, report, prefix_samples=4
):
    out: List[Mismatch] = []
    inline_specs = [s for s in specs if s.inline]
    if not inline_specs:
        return out
    n_ops = len(ops)
    sample_at = set()
    if n_ops:
        stride = max(1, n_ops // prefix_samples)
        sample_at = set(range(stride - 1, n_ops, stride))
        sample_at.add(n_ops - 1)
    for spec in inline_specs:
        report.count("finalization-monotonic")
        clock = spec.build(graph, center)
        builder = ExecutionBuilder(graph.n_vertices, graph=graph)
        msg_ids: Dict[int, int] = {}
        payloads: Dict[int, Any] = {}
        final_ts: Dict = {}

        def record_final(source: str, step: int) -> None:
            for eid in clock.drain_newly_finalized():
                ts = clock.timestamp(eid)
                if eid in final_ts and final_ts[eid] != ts:
                    out.append(_mk(
                        "finalization-monotonic", spec.name,
                        f"{source} step {step}: {eid} re-finalized "
                        f"{final_ts[eid]} -> {ts}",
                        graph, ops, fifo, context,
                    ))
                final_ts[eid] = ts

        for step, op in enumerate(ops):
            kind = op[0]
            if kind == "local":
                ev = builder.local(op[1])
                clock.on_local(ev)
            elif kind == "send":
                tag, src, dst = op[1], op[2], op[3]
                msg_ids[tag] = builder.send(src, dst)
                ev = builder.last_event(src)
                payloads[tag] = clock.on_send(ev)
            else:
                tag = op[1]
                msg = builder.message(msg_ids[tag])
                ev = builder.receive(msg.dst, msg_ids[tag])
                for cm in clock.on_receive(ev, payloads.pop(tag)):
                    clock.on_control(cm.src, cm.dst, cm.payload)
            record_final("stream", step)
            # previously finalized timestamps must read back unchanged
            for eid, ts in final_ts.items():
                now = clock.timestamp(eid)
                if now != ts:
                    out.append(_mk(
                        "finalization-monotonic", spec.name,
                        f"step {step}: finalized {eid} drifted "
                        f"{ts} -> {now}",
                        graph, ops, fifo, context,
                    ))
            if step not in sample_at:
                continue
            # finalize a restored copy of this prefix: already-final values
            # must survive, everything must finalize, and the result must
            # characterize the prefix's happened-before exactly
            clone = spec.build(graph, center)
            clone.restore(clock.checkpoint())
            clone.finalize_at_termination()
            for eid, ts in final_ts.items():
                now = clone.timestamp(eid)
                if now != ts:
                    out.append(_mk(
                        "finalization-monotonic", spec.name,
                        f"prefix {step}: finalize_at_termination changed "
                        f"already-final {eid}: {ts} -> {now}",
                        graph, ops, fifo, context,
                    ))
            prefix_ex = execution_from_ops(graph, ops[: step + 1])
            prefix_oracle = HappenedBeforeOracle(prefix_ex)
            ids = [e.eid for e in prefix_ex.all_events()]
            ts_of = {}
            for eid in ids:
                t = clone.timestamp(eid)
                if t is None:
                    out.append(_mk(
                        "finalization-monotonic", spec.name,
                        f"prefix {step}: {eid} still ⊥ after "
                        f"finalize_at_termination",
                        graph, ops, fifo, context,
                    ))
                ts_of[eid] = t
            for a in ids:
                if ts_of[a] is None:
                    continue
                for b in ids:
                    if a == b or ts_of[b] is None:
                        continue
                    hb = prefix_oracle.happened_before(a, b)
                    claimed = ts_of[a].precedes(ts_of[b])
                    if hb != claimed:
                        out.append(_mk(
                            "finalization-monotonic", spec.name,
                            f"prefix {step}: {a}->{b} hb={hb} but "
                            f"finalized prefix claims {claimed}",
                            graph, ops, fifo, context,
                        ))
        # the fully finalized run must also be exact (covered separately by
        # invariant 1, but reached through the streaming path here)
        clock.finalize_at_termination()
        record_final("termination", n_ops)
    return out


# ----------------------------------------------------------------------
# invariant 5: numpy array kernel vs pure packed-int kernel
# ----------------------------------------------------------------------
def _check_backends(graph, ops, execution, fifo, context, report):
    from repro.core.backend import numpy_available

    out: List[Mismatch] = []
    if not numpy_available():
        return out
    report.count("backend-differential")

    def bad(detail: str) -> None:
        out.append(_mk(
            "backend-differential", "oracle", detail,
            graph, ops, fifo, context,
        ))

    pure = HappenedBeforeOracle(execution, backend="pure")
    fast = HappenedBeforeOracle(execution, backend="numpy")
    if fast.past_masks() != pure.past_masks():
        bad("numpy past matrix != pure causal-past rows")
        return out  # rows are the substrate; everything below would cascade
    if fast.relation_counts() != pure.relation_counts():
        bad("relation_counts diverge across backends")
    ids = [ev.eid for ev in execution.all_events()]
    for eid in ids:
        if fast.vector_clock(eid) != pure.vector_clock(eid):
            bad(f"vector_clock({eid}) diverges across backends")
            break
    qrng = random.Random((len(ops) + 1) * 1099087573 % (2**31))
    if ids:
        seeds = qrng.sample(ids, min(3, len(ids)))
        if downward_closure(fast, seeds) != downward_closure(pure, seeds):
            bad(f"downward_closure({seeds}) diverges across backends")
    # streaming hand-off: interleave point queries with appends, then
    # freeze straight onto the numpy backend
    inc = IncrementalHBOracle(graph.n_vertices)
    seen: List = []
    for ev in execution.delivery_order():
        if ev.is_receive:
            inc.append_receive(ev.eid, execution.send_of(ev).eid)
        else:
            inc.append_event(ev)
        seen.append(ev.eid)
        if len(seen) >= 2 and qrng.random() < 0.25:
            a, b = qrng.sample(seen, 2)
            if inc.precedes(a, b) != fast.happened_before(a, b):
                bad(f"precedes({a}, {b}) diverges vs numpy mid-stream")
    frozen = inc.freeze(execution, backend="numpy")
    if frozen.backend != "numpy":
        bad("freeze(backend='numpy') did not select the numpy kernel")
    if frozen.past_masks() != pure.past_masks():
        bad("freeze(backend='numpy') rows differ from pure rebuild")
    for eid in ids:
        if frozen.vector_clock(eid) != pure.vector_clock(eid):
            bad(f"freeze(backend='numpy') vector_clock({eid}) differs")
            break
    # one scheme validation end to end: the array matrix-validate path
    # (numpy oracle) must yield the identical report to the packed-int
    # path (pure oracle), mismatch ordering included
    asg = replay_one(execution, VectorClock(graph.n_vertices))
    if asg.validate(fast) != asg.validate(pure):
        bad("validate() report differs between numpy and pure oracles")
    return out


# ----------------------------------------------------------------------
# invariant 6: columnar store + batched appends vs the object model
# ----------------------------------------------------------------------
def _check_stores(graph, ops, execution, oracle, fifo, context, report):
    from repro.core.backend import numpy_available
    from repro.core.colstore import ColumnarExecutionBuilder

    out: List[Mismatch] = []
    report.count("store-differential")

    def bad(detail: str) -> None:
        out.append(_mk(
            "store-differential", "store", detail,
            graph, ops, fifo, context,
        ))

    # same ops through the columnar builder: the execution view must be
    # indistinguishable from the object-model one
    cex = execution_from_ops(
        graph, ops,
        builder=ColumnarExecutionBuilder(graph.n_vertices, graph),
    )
    if list(cex.delivery_order()) != list(execution.delivery_order()):
        bad("columnar delivery_order differs from object builder")
        return out  # the executions disagree; everything below cascades
    if tuple(cex.messages) != tuple(execution.messages):
        bad("columnar messages differ from object builder")
    if cex.event_counts() != execution.event_counts():
        bad("columnar event_counts differ from object builder")
    if cex.receive_pairs() != execution.receive_pairs():
        bad("columnar receive_pairs differ from object builder")
    col_oracle = HappenedBeforeOracle(cex)
    if col_oracle.past_masks() != oracle.past_masks():
        bad("causal-past rows differ when built over the columnar store")
    asg_obj = replay_one(execution, VectorClock(graph.n_vertices))
    asg_col = replay_one(cex, VectorClock(graph.n_vertices))
    if asg_obj.validate(oracle) != asg_col.validate(col_oracle):
        bad("validate() report differs between object and columnar store")

    # batched appends vs per-op appends, queries interleaved mid-stream
    engines = ["pure"]
    if numpy_available():
        engines.append("numpy")
    events = list(execution.delivery_order())
    for engine in engines:
        perop = IncrementalHBOracle(graph.n_vertices)
        batched = IncrementalHBOracle(
            graph.n_vertices, batch=True, backend=engine
        )
        qrng = random.Random((len(ops) + 3) * 2246822519 % (2**31))
        seen: List = []
        for ev in events:
            if ev.is_receive:
                send = execution.send_of(ev).eid
                perop.append_receive(ev.eid, send)
                batched.append_receive(ev.eid, send)
            else:
                perop.append_event(ev)
                batched.append_event(ev)
            seen.append(ev.eid)
            if len(seen) >= 2 and qrng.random() < 0.3:
                a, b = qrng.sample(seen, 2)
                if batched.happened_before(a, b) != perop.happened_before(
                    a, b
                ):
                    bad(
                        f"[{engine}] batched happened_before({a}, {b}) "
                        f"diverges from per-op mid-stream"
                    )
                if batched.vector_clock(a) != perop.vector_clock(a):
                    bad(
                        f"[{engine}] batched vector_clock({a}) diverges "
                        f"from per-op mid-stream"
                    )
        if batched.relation_counts() != perop.relation_counts():
            bad(f"[{engine}] batched relation_counts diverge after ingest")
        for eid in seen:
            if batched.causal_past(eid) != perop.causal_past(eid):
                bad(f"[{engine}] batched causal_past({eid}) diverges")
                break
        fb = batched.freeze(execution)
        if fb.past_masks() != oracle.past_masks():
            bad(f"[{engine}] batched freeze() rows differ from batch oracle")
        for eid in seen:
            if fb.vector_clock(eid) != oracle.vector_clock(eid):
                bad(f"[{engine}] batched freeze() vector_clock({eid}) differs")
                break
    return out


# ----------------------------------------------------------------------
def check_execution(
    graph: CommunicationGraph,
    ops: Sequence[Op],
    *,
    fifo: bool = False,
    schemes: Optional[Sequence[SchemeSpec]] = None,
    context: Optional[Mapping[str, Any]] = None,
    report: Optional[ConformanceReport] = None,
    backend: str = "auto",
) -> List[Mismatch]:
    """Run all conformance invariants on one execution.

    *schemes* restricts the scheme set (corpus replays pin specific
    schemes); by default every scheme legal for (*graph*, *fifo*) runs.
    *backend* is one of :data:`BACKEND_MODES`: ``pure``/``numpy`` pin the
    kernel for every oracle built during the check; ``auto`` and
    ``old-vs-new`` additionally run the backend-differential invariant
    whenever numpy is importable.
    """
    if backend not in BACKEND_MODES:
        raise ValueError(
            f"backend must be one of {BACKEND_MODES}, got {backend!r}"
        )
    context = dict(context or {})
    report = report if report is not None else ConformanceReport()
    specs = list(schemes) if schemes is not None else schemes_for(graph, fifo)
    center = star_center_of(graph) or 0
    execution = execution_from_ops(graph, ops)
    report.events_checked += execution.n_events
    pin = backend if backend in ("pure", "numpy") else None
    ctx = use_backend(pin) if pin is not None else nullcontext()
    with ctx:
        oracle = HappenedBeforeOracle(execution)
        mismatches: List[Mismatch] = []
        mismatches += _check_schemes(
            graph, ops, execution, oracle, specs, center, fifo, context,
            report,
        )
        mismatches += _check_oracles(
            graph, ops, execution, oracle, fifo, context, report
        )
        mismatches += _check_finalization(
            graph, ops, specs, center, fifo, context, report
        )
        mismatches += _check_stores(
            graph, ops, execution, oracle, fifo, context, report
        )
    if backend != "pure":
        mismatches += _check_backends(
            graph, ops, execution, fifo, context, report
        )
    return mismatches


# ----------------------------------------------------------------------
# trial generation
# ----------------------------------------------------------------------
def _trial_fault(kind: int, n: int) -> Optional[FaultModel]:
    """Cycle a small family of drop schedules through the trials."""
    if kind == 1:
        return GilbertElliottLoss(
            p_enter_burst=0.2, p_exit_burst=0.3, loss_burst=1.0
        )
    if kind == 2:
        half = max(1, n // 2)
        return PartitionFault(
            groups=[range(half), range(half, n)], start=2.0, duration=8.0
        )
    return None


def _trial_graph(kind: str, n: int, rng: random.Random) -> CommunicationGraph:
    if kind == "star":
        return generators.star(n)
    if kind == "tree":
        return generators.random_tree(n, rng)
    if kind == "random":
        return generators.erdos_renyi(n, 0.5, rng)
    raise ValueError(f"unknown topology kind {kind!r}")


def generate_trial(
    seed: int,
    trial: int,
    topologies: Sequence[str],
    max_steps: int,
) -> Tuple[CommunicationGraph, List[Op], bool, Dict[str, Any]]:
    """Deterministically generate trial *trial* of a campaign."""
    rng = random.Random(cell_seed(seed, "conformance", trial))
    kind = topologies[trial % len(topologies)]
    n = rng.randrange(2, 8)
    graph = _trial_graph(kind, n, rng)
    fifo = trial % 3 == 0
    deliver_all = trial % 4 != 0
    # FIFO trials stay lossless: the SK differential vectors assume
    # *reliable* FIFO channels, and a dropped message would create a
    # sequence gap that legally breaks their encoding
    fault = None if fifo else _trial_fault(trial % 5 % 3, n)
    steps = rng.randrange(0, max(1, max_steps))
    ops = random_ops(
        graph,
        rng,
        steps=steps,
        deliver_all=deliver_all,
        fifo=fifo,
        fault=fault,
    )
    context = {
        "trial": trial,
        "seed": seed,
        "topology": kind,
        "fault": type(fault).__name__ if fault else "none",
    }
    return graph, ops, fifo, context


def run_trials(
    report: ConformanceReport,
    lo: int,
    hi: int,
    *,
    seed: int = 0,
    topologies: Sequence[str] = ("star", "tree", "random"),
    max_steps: int = 40,
    shrink: bool = True,
    backend: str = "auto",
    tracer=None,
) -> ConformanceReport:
    """Run campaign trials ``[lo, hi)`` into *report*.

    Trial generation keys off the *absolute* trial index, so a campaign
    sharded into chunks (the fabric's ``conformance-chunk`` work kind)
    reproduces the serial campaign exactly, per trial, no matter how the
    chunks are placed or in which order they complete.
    """
    from repro.conformance.shrinker import shrink_mismatch

    for trial in range(lo, hi):
        graph, ops, fifo, context = generate_trial(
            seed, trial, topologies, max_steps
        )
        found = check_execution(
            graph, ops, fifo=fifo, context=context, report=report,
            backend=backend,
        )
        report.trials += 1
        for mm in found:
            if shrink:
                mm = shrink_mismatch(graph, mm)
            report.mismatches.append(mm)
            if tracer is not None:
                tracer.event("mismatch", **mm.to_record())
    return report


def fuzz(
    trials: int,
    seed: int = 0,
    topologies: Sequence[str] = ("star", "tree", "random"),
    max_steps: int = 40,
    tracer=None,
    shrink: bool = True,
    backend: str = "auto",
) -> ConformanceReport:
    """Run a fuzzing campaign; every mismatch is (optionally) shrunk.

    The campaign is a pure function of ``(trials, seed, topologies,
    max_steps)`` — per-trial RNGs derive from :func:`repro.bench.cell_seed`
    so reports reproduce exactly.  *backend* is passed through to
    :func:`check_execution` (``old-vs-new`` forces the pure-vs-numpy
    differential on every trial).
    """
    report = ConformanceReport()
    run_trials(
        report,
        0,
        trials,
        seed=seed,
        topologies=topologies,
        max_steps=max_steps,
        shrink=shrink,
        backend=backend,
        tracer=tracer,
    )
    if tracer is not None:
        tracer.event(
            "summary",
            trials=report.trials,
            events=report.events_checked,
            checks=dict(sorted(report.checks.items())),
            mismatches=len(report.mismatches),
        )
    return report

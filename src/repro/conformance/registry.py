"""Registry of every clock scheme the conformance fuzzer cross-checks.

One :class:`SchemeSpec` per registered scheme, carrying the metadata the
fuzzer needs to decide *where* a scheme may legally run:

- ``exact`` — whether the scheme claims to characterize happened-before
  (``e -> f  ⟺  ts(e) < ts(f)``) or only the one-sided consistency
  guarantee (``e -> f  ⟹  ts(e) < ts(f)``) of the lossy baselines;
- ``requires_fifo`` — the Singhal–Kshemkalyani differential vectors assume
  *reliable* FIFO application channels, so the spec only applies to FIFO
  executions without message loss (a dropped message would leave a gap in
  the per-channel sequence the differential encoding counts on);
- ``star_only`` — Theorem 3.1's four-element timestamps are defined only on
  star topologies (every message touches the center);
- ``inline`` — whether timestamps start as ``⊥`` and finalize later, which
  is what the finalization-monotonicity invariant checks.

The registry is deliberately independent of :func:`repro.cli.build_clock`
(which serves interactive use): conformance must cover *every* scheme,
including baselines like HLC that need a deterministic synthetic time
source to be replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.baselines import ClusterClock, EncodedClock, PlausibleClock
from repro.baselines.hlc import HybridLogicalClock, counter_time_source
from repro.clocks import (
    ClockAlgorithm,
    CoverInlineClock,
    LamportClock,
    SKVectorClock,
    StarInlineClock,
    VectorClock,
)
from repro.topology.graph import CommunicationGraph


@dataclass(frozen=True)
class SchemeSpec:
    """A registered clock scheme plus the preconditions it may assume."""

    name: str
    factory: Callable[[CommunicationGraph, int], ClockAlgorithm]
    exact: bool
    requires_fifo: bool = False
    star_only: bool = False
    inline: bool = False

    def build(
        self, graph: CommunicationGraph, star_center: int = 0
    ) -> ClockAlgorithm:
        return self.factory(graph, star_center)


def _vector(g: CommunicationGraph, _c: int) -> ClockAlgorithm:
    return VectorClock(g.n_vertices)


def _vector_sk(g: CommunicationGraph, _c: int) -> ClockAlgorithm:
    return SKVectorClock(g.n_vertices)


def _lamport(g: CommunicationGraph, _c: int) -> ClockAlgorithm:
    return LamportClock(g.n_vertices)


def _inline_star(g: CommunicationGraph, center: int) -> ClockAlgorithm:
    return StarInlineClock(g.n_vertices, center=center)


def _inline_cover(g: CommunicationGraph, _c: int) -> ClockAlgorithm:
    return CoverInlineClock(g)


def _plausible(g: CommunicationGraph, _c: int) -> ClockAlgorithm:
    n = g.n_vertices
    return PlausibleClock(n, max(1, n // 3))


def _cluster(g: CommunicationGraph, _c: int) -> ClockAlgorithm:
    return ClusterClock(g.n_vertices)


def _hlc(g: CommunicationGraph, _c: int) -> ClockAlgorithm:
    # the synthetic counter source makes HLC replay-deterministic
    return HybridLogicalClock(
        g.n_vertices, time_source=counter_time_source()
    )


def _encoded(g: CommunicationGraph, _c: int) -> ClockAlgorithm:
    return EncodedClock(g.n_vertices)


_ALL: Tuple[SchemeSpec, ...] = (
    SchemeSpec("vector", _vector, exact=True),
    SchemeSpec("vector-sk", _vector_sk, exact=True, requires_fifo=True),
    SchemeSpec("lamport", _lamport, exact=False),
    SchemeSpec(
        "inline-star", _inline_star, exact=True, star_only=True, inline=True
    ),
    SchemeSpec("inline-cover", _inline_cover, exact=True, inline=True),
    SchemeSpec("plausible", _plausible, exact=False),
    SchemeSpec("cluster", _cluster, exact=True),
    SchemeSpec("hlc", _hlc, exact=False),
    SchemeSpec("encoded", _encoded, exact=True),
)


def all_schemes() -> Tuple[SchemeSpec, ...]:
    """Every registered scheme, in stable order."""
    return _ALL


def scheme_by_name(name: str) -> SchemeSpec:
    for spec in _ALL:
        if spec.name == name:
            return spec
    raise ValueError(f"unknown conformance scheme {name!r}")


def star_center_of(graph: CommunicationGraph) -> Optional[int]:
    """The center of *graph* if it is a star, else ``None``.

    A single edge (n=2) is a degenerate star; the lower-numbered endpoint
    is reported as its center.  Isolated vertices disqualify a graph — the
    inline-star scheme requires every message to touch the center, which is
    vacuous for a process with no channel, but the paper's star has none.
    """
    n = graph.n_vertices
    if n < 2 or graph.n_edges != n - 1:
        return None
    if n == 2:
        return 0 if graph.has_edge(0, 1) else None
    centers = [v for v in graph.vertices() if graph.degree(v) == n - 1]
    if len(centers) != 1:
        return None
    if any(graph.degree(v) != 1 for v in graph.vertices() if v != centers[0]):
        return None
    return centers[0]


def schemes_for(
    graph: CommunicationGraph, fifo: bool
) -> List[SchemeSpec]:
    """The schemes legally runnable on an execution over *graph*."""
    center = star_center_of(graph)
    out: List[SchemeSpec] = []
    for spec in _ALL:
        if spec.requires_fifo and not fifo:
            continue
        if spec.star_only and center is None:
            continue
        out.append(spec)
    return out

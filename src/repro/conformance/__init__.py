"""Differential conformance fuzzing for clock schemes and oracles.

The paper's claims are relational — every comparison operator must agree
with happened-before — so this package cross-checks all registered clock
schemes and both causality-oracle flavors on the *same* randomized
executions, shrinks any divergence to a minimal counterexample, and pins
fixed bugs in a replayable corpus.  See :mod:`repro.conformance.fuzzer`
for the four invariants, :mod:`repro.conformance.registry` for the scheme
table, and ``repro conformance --help`` for the CLI entry point.
"""

from repro.conformance.corpus import (
    CASE_SCHEMA,
    CorpusCase,
    case_from_mismatch,
    load_case,
    load_corpus,
    replay_case,
    save_case,
)
from repro.conformance.fuzzer import (
    INVARIANTS,
    ConformanceReport,
    Mismatch,
    check_execution,
    fuzz,
    generate_trial,
)
from repro.conformance.registry import (
    SchemeSpec,
    all_schemes,
    scheme_by_name,
    schemes_for,
    star_center_of,
)
from repro.conformance.shrinker import shrink_mismatch, shrink_ops

__all__ = [
    "CASE_SCHEMA",
    "INVARIANTS",
    "ConformanceReport",
    "CorpusCase",
    "Mismatch",
    "SchemeSpec",
    "all_schemes",
    "case_from_mismatch",
    "check_execution",
    "fuzz",
    "generate_trial",
    "load_case",
    "load_corpus",
    "replay_case",
    "save_case",
    "scheme_by_name",
    "schemes_for",
    "shrink_mismatch",
    "shrink_ops",
    "star_center_of",
]

"""Pinned regression corpus for the conformance fuzzer.

Every execution-level bug or boundary behavior this repo has had to reason
about gets a *corpus case*: a small JSON file holding the (usually shrunk)
op list, the topology, and which schemes/invariants it pins.  The tier-1
suite replays the whole corpus through
:func:`repro.conformance.fuzzer.check_execution` on every run, so a
regression reintroducing an old bug fails immediately with the minimized
counterexample — no fuzzing budget required.

File format (``repro.conformance.case/1``)::

    {
      "schema": "repro.conformance.case/1",
      "name": "star-no-ack-boundary",
      "notes": "why this execution is pinned",
      "n_processes": 3,
      "edges": [[0, 1], [0, 2]],
      "fifo": false,
      "ops": [["send", 0, 1, 0], ["local", 2], ["recv", 0]],
      "schemes": ["inline-star"]        // optional; default: all legal
    }

Cases are deliberately self-contained — explicit edge lists, not generator
names — so replay never depends on topology-generator RNG details.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.conformance.fuzzer import Mismatch, check_execution
from repro.conformance.registry import scheme_by_name
from repro.core.random_executions import Op
from repro.topology.graph import CommunicationGraph

CASE_SCHEMA = "repro.conformance.case/1"


@dataclass(frozen=True)
class CorpusCase:
    """One pinned execution plus the scheme set it constrains."""

    name: str
    n_processes: int
    edges: Tuple[Tuple[int, int], ...]
    ops: Tuple[Op, ...]
    fifo: bool = False
    schemes: Optional[Tuple[str, ...]] = None  # None = all legal schemes
    notes: str = ""

    def graph(self) -> CommunicationGraph:
        return CommunicationGraph(self.n_processes, self.edges)

    def to_json(self) -> str:
        payload = {
            "schema": CASE_SCHEMA,
            "name": self.name,
            "notes": self.notes,
            "n_processes": self.n_processes,
            "edges": [list(e) for e in self.edges],
            "fifo": self.fifo,
            "ops": [list(op) for op in self.ops],
        }
        if self.schemes is not None:
            payload["schemes"] = list(self.schemes)
        return json.dumps(payload, indent=2) + "\n"


def case_from_mismatch(name: str, mismatch: Mismatch, notes: str = "") -> CorpusCase:
    """Package a (shrunken) mismatch as a corpus case pinning its scheme."""
    schemes = None if mismatch.scheme == "oracle" else (mismatch.scheme,)
    return CorpusCase(
        name=name,
        n_processes=mismatch.n_processes,
        edges=mismatch.edges,
        ops=mismatch.ops,
        fifo=mismatch.fifo,
        schemes=schemes,
        notes=notes or mismatch.detail,
    )


def load_case(path: Union[str, Path]) -> CorpusCase:
    raw = json.loads(Path(path).read_text())
    if raw.get("schema") != CASE_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {CASE_SCHEMA!r}, "
            f"got {raw.get('schema')!r}"
        )
    schemes = raw.get("schemes")
    return CorpusCase(
        name=raw["name"],
        n_processes=raw["n_processes"],
        edges=tuple(tuple(e) for e in raw["edges"]),
        ops=tuple(tuple(op) for op in raw["ops"]),
        fifo=bool(raw.get("fifo", False)),
        schemes=tuple(schemes) if schemes is not None else None,
        notes=raw.get("notes", ""),
    )


def save_case(case: CorpusCase, directory: Union[str, Path]) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{case.name}.json"
    path.write_text(case.to_json())
    return path


def load_corpus(directory: Union[str, Path]) -> List[CorpusCase]:
    """All cases under *directory*, sorted by file name."""
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"corpus directory {directory} not found")
    return [load_case(p) for p in sorted(directory.glob("*.json"))]


def replay_case(case: CorpusCase) -> List[Mismatch]:
    """Re-check one pinned execution; an empty list means it still passes."""
    schemes = (
        [scheme_by_name(s) for s in case.schemes]
        if case.schemes is not None
        else None
    )
    return check_execution(
        case.graph(),
        case.ops,
        fifo=case.fifo,
        schemes=schemes,
        context={"corpus_case": case.name},
    )

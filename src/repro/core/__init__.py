"""Event model, executions, happened-before oracle, and consistent cuts."""

from repro.core.events import (
    Event,
    EventId,
    EventKind,
    Message,
    MessageId,
    ProcessId,
)
from repro.core.colstore import (
    ColumnarExecution,
    ColumnarExecutionBuilder,
    EventStore,
)
from repro.core.execution import Execution, ExecutionBuilder, ExecutionError
from repro.core.happened_before import HappenedBeforeOracle, downward_closure
from repro.core.incremental import (
    IncrementalHBOracle,
    as_batch_oracle,
    incremental_from_execution,
)
from repro.core.random_executions import random_execution
from repro.core.trace import (
    execution_from_dict,
    execution_to_dict,
    load_execution,
    save_execution,
)
from repro.core.cuts import (
    Cut,
    cut_from_events,
    cut_size,
    empty_cut,
    events_in_cut,
    frontier,
    full_cut,
    is_consistent,
    join,
    max_consistent_cut_within,
    meet,
)

__all__ = [
    "Event",
    "EventId",
    "EventKind",
    "Message",
    "MessageId",
    "ProcessId",
    "ColumnarExecution",
    "ColumnarExecutionBuilder",
    "EventStore",
    "Execution",
    "ExecutionBuilder",
    "ExecutionError",
    "HappenedBeforeOracle",
    "IncrementalHBOracle",
    "as_batch_oracle",
    "downward_closure",
    "incremental_from_execution",
    "Cut",
    "cut_from_events",
    "cut_size",
    "empty_cut",
    "events_in_cut",
    "frontier",
    "full_cut",
    "is_consistent",
    "join",
    "max_consistent_cut_within",
    "meet",
    "random_execution",
    "execution_from_dict",
    "execution_to_dict",
    "load_execution",
    "save_execution",
]

"""Executions: validated, append-only records of distributed computations.

An :class:`Execution` is the ground-truth object the whole library revolves
around.  It records, for every process, the totally ordered list of events
that occurred there, together with the message-matching between sends and
receives.  Both the discrete-event simulator (:mod:`repro.sim`) and the
hand-built adversarial constructions (:mod:`repro.lowerbounds`) produce
executions; clock algorithms are replayed over them, and the happened-before
oracle (:mod:`repro.core.happened_before`) derives causality from them.

Executions are built through the mutable :class:`ExecutionBuilder` and then
frozen; a frozen :class:`Execution` is immutable and hashable by identity.

Validation enforced by the builder:

- events at a process are appended with consecutive indices 1, 2, 3, …;
- a receive must name a previously sent, not yet delivered message addressed
  to the receiving process;
- if a :class:`~repro.topology.graph.CommunicationGraph` is supplied, every
  message must travel along an edge of the graph.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.events import (
    Event,
    EventId,
    EventKind,
    Message,
    MessageId,
    ProcessId,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.topology.graph import CommunicationGraph


class ExecutionError(ValueError):
    """Raised when an execution would violate the message-passing model."""


class Execution:
    """An immutable, validated record of a distributed computation.

    Instances are created via :class:`ExecutionBuilder` (or the simulator) —
    not directly.  The class exposes read-only views over events, messages,
    and per-process sequences.
    """

    def __init__(
        self,
        n_processes: int,
        events_by_proc: Sequence[Sequence[Event]],
        messages: Sequence[Message],
        graph: Optional["CommunicationGraph"] = None,
    ) -> None:
        self._n = n_processes
        self._events_by_proc: Tuple[Tuple[Event, ...], ...] = tuple(
            tuple(evts) for evts in events_by_proc
        )
        self._messages: Tuple[Message, ...] = tuple(messages)
        self._graph = graph
        self._by_id: Dict[EventId, Event] = {
            ev.eid: ev for evts in self._events_by_proc for ev in evts
        }

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n_processes(self) -> int:
        """Number of processes in the system (some may have no events)."""
        return self._n

    @property
    def graph(self) -> Optional["CommunicationGraph"]:
        """The communication topology, if one was declared."""
        return self._graph

    @property
    def messages(self) -> Tuple[Message, ...]:
        """All messages, in send order."""
        return self._messages

    def events_at(self, proc: ProcessId) -> Tuple[Event, ...]:
        """The totally ordered events of process *proc*."""
        return self._events_by_proc[proc]

    def all_events(self) -> Iterator[Event]:
        """Iterate over all events, process-major, index order within."""
        for evts in self._events_by_proc:
            yield from evts

    def event(self, eid: EventId) -> Event:
        """Look up an event by id; raises ``KeyError`` if absent."""
        return self._by_id[eid]

    def __contains__(self, eid: EventId) -> bool:
        return eid in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    @property
    def n_events(self) -> int:
        """Total number of events across all processes."""
        return len(self._by_id)

    def message(self, msg_id: MessageId) -> Message:
        """Look up a message by id."""
        return self._messages[msg_id]

    def max_events_per_process(self) -> int:
        """The paper's ``K``: the maximum number of events at any process."""
        if not self._events_by_proc:
            return 0
        return max(len(evts) for evts in self._events_by_proc)

    def event_counts(self) -> List[int]:
        """Events per process, as a list indexed by process id.

        Overridden O(1)/column-read by the columnar execution
        (:mod:`repro.core.colstore`); the array kernel's bulk builder
        consumes this instead of materializing event tuples.
        """
        return [len(evts) for evts in self._events_by_proc]

    def receive_pairs(self) -> List[Tuple[EventId, EventId]]:
        """``(recv_eid, send_eid)`` of every delivered message, send order.

        The exact shape :func:`repro.core.npkernel.bulk_past_matrix` needs;
        the columnar execution serves it straight from the message columns
        without building :class:`~repro.core.events.Message` objects.
        """
        return [
            (m.recv_event, m.send_event)
            for m in self._messages
            if m.recv_event is not None
        ]

    # ------------------------------------------------------------------
    # structural queries used by clocks and applications
    # ------------------------------------------------------------------
    def send_of(self, recv: Event) -> Event:
        """Given a receive event, return the matching send event."""
        if not recv.is_receive:
            raise ValueError(f"{recv} is not a receive event")
        assert recv.msg_id is not None
        return self._by_id[self._messages[recv.msg_id].send_event]

    def receive_of(self, send: Event) -> Optional[Event]:
        """Given a send event, return the matching receive (or ``None``)."""
        if not send.is_send:
            raise ValueError(f"{send} is not a send event")
        assert send.msg_id is not None
        recv_eid = self._messages[send.msg_id].recv_event
        return None if recv_eid is None else self._by_id[recv_eid]

    def undelivered_messages(self) -> List[Message]:
        """Messages sent but never received in this execution."""
        return [m for m in self._messages if not m.delivered]

    def delivery_order(self) -> List[Event]:
        """A total order of all events consistent with happened-before.

        Returns a topological order obtained by a deterministic merge: events
        are emitted process-major but a receive is deferred until its send has
        been emitted.  Useful for replaying clock algorithms over hand-built
        executions.
        """
        emitted: set[EventId] = set()
        cursors = [0] * self._n
        out: List[Event] = []
        total = self.n_events
        while len(out) < total:
            progressed = False
            for proc in range(self._n):
                while cursors[proc] < len(self._events_by_proc[proc]):
                    ev = self._events_by_proc[proc][cursors[proc]]
                    if ev.is_receive:
                        send_eid = self._messages[ev.msg_id].send_event  # type: ignore[index]
                        if send_eid not in emitted:
                            break
                    out.append(ev)
                    emitted.add(ev.eid)
                    cursors[proc] += 1
                    progressed = True
            if not progressed:
                raise ExecutionError(
                    "execution is not causally consistent: "
                    "a receive precedes its send"
                )
        return out

    def __repr__(self) -> str:
        per_proc = ",".join(str(len(evts)) for evts in self._events_by_proc)
        return (
            f"Execution(n={self._n}, events=[{per_proc}], "
            f"messages={len(self._messages)})"
        )


class ExecutionBuilder:
    """Mutable builder that validates the message-passing model step by step.

    Typical use::

        b = ExecutionBuilder(n_processes=3)
        m = b.send(0, 1)            # p0 sends to p1
        b.local(2)                  # p2 takes a local step
        b.receive(1, m)             # p1 receives p0's message
        execution = b.freeze()

    The builder hands out :class:`~repro.core.events.MessageId` values from
    :meth:`send`; :meth:`receive` consumes them.  Messages on a channel are
    *not* forced to be FIFO — the model (and the paper) allows arbitrary
    per-channel reordering.
    """

    def __init__(
        self,
        n_processes: int,
        graph: Optional["CommunicationGraph"] = None,
    ) -> None:
        if n_processes < 1:
            raise ExecutionError("need at least one process")
        if graph is not None and graph.n_vertices != n_processes:
            raise ExecutionError(
                f"graph has {graph.n_vertices} vertices but "
                f"{n_processes} processes were requested"
            )
        self._n = n_processes
        self._graph = graph
        self._events: List[List[Event]] = [[] for _ in range(n_processes)]
        self._messages: List[Message] = []
        self._frozen = False

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._frozen:
            raise ExecutionError("builder already frozen")

    def _next_eid(self, proc: ProcessId) -> EventId:
        if not 0 <= proc < self._n:
            raise ExecutionError(f"process {proc} out of range [0, {self._n})")
        return EventId(proc, len(self._events[proc]) + 1)

    def local(self, proc: ProcessId) -> Event:
        """Append a local (internal) event at *proc*."""
        self._check_open()
        ev = Event(self._next_eid(proc), EventKind.LOCAL)
        self._events[proc].append(ev)
        return ev

    def send(self, src: ProcessId, dst: ProcessId) -> MessageId:
        """Append a send event at *src* addressed to *dst*; returns the id."""
        self._check_open()
        if not 0 <= dst < self._n:
            raise ExecutionError(f"destination {dst} out of range [0, {self._n})")
        if src == dst:
            raise ExecutionError("self-messages are not part of the model")
        if self._graph is not None and not self._graph.has_edge(src, dst):
            raise ExecutionError(
                f"no channel between p{src} and p{dst} in the topology"
            )
        eid = self._next_eid(src)
        msg_id = len(self._messages)
        ev = Event(eid, EventKind.SEND, msg_id=msg_id, peer=dst)
        self._events[src].append(ev)
        self._messages.append(Message(msg_id, src, dst, eid))
        return msg_id

    def receive(self, proc: ProcessId, msg_id: MessageId) -> Event:
        """Append the receive of message *msg_id* at *proc*."""
        self._check_open()
        if not 0 <= msg_id < len(self._messages):
            raise ExecutionError(f"unknown message id {msg_id}")
        msg = self._messages[msg_id]
        if msg.delivered:
            raise ExecutionError(f"message {msg_id} already delivered")
        if msg.dst != proc:
            raise ExecutionError(
                f"message {msg_id} is addressed to p{msg.dst}, not p{proc}"
            )
        eid = self._next_eid(proc)
        ev = Event(eid, EventKind.RECEIVE, msg_id=msg_id, peer=msg.src)
        self._events[proc].append(ev)
        self._messages[msg_id] = msg.with_receive(eid)
        return ev

    def send_and_receive(self, src: ProcessId, dst: ProcessId) -> Tuple[Event, Event]:
        """Convenience: send from *src* to *dst* and deliver it immediately."""
        msg_id = self.send(src, dst)
        send_ev = self._events[src][-1]
        recv_ev = self.receive(dst, msg_id)
        return send_ev, recv_ev

    @property
    def n_processes(self) -> int:
        return self._n

    def events_so_far(self, proc: ProcessId) -> int:
        """Number of events appended at *proc* so far."""
        return len(self._events[proc])

    def last_event(self, proc: ProcessId) -> Event:
        """The most recently appended event at *proc*."""
        if not self._events[proc]:
            raise ExecutionError(f"process {proc} has no events yet")
        return self._events[proc][-1]

    def message(self, msg_id: MessageId) -> Message:
        """The (possibly still undelivered) message with id *msg_id*."""
        if not 0 <= msg_id < len(self._messages):
            raise ExecutionError(f"unknown message id {msg_id}")
        return self._messages[msg_id]

    def freeze(self) -> Execution:
        """Finish building and return the immutable execution."""
        self._check_open()
        self._frozen = True
        return Execution(self._n, self._events, self._messages, self._graph)

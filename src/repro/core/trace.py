"""Execution trace (de)serialization.

Executions — together with their communication graphs — round-trip through
a plain-JSON-compatible dict format, so adversarial constructions, failing
fuzz cases, and simulator outputs can be archived, shared, and replayed:

    data = execution_to_dict(execution)
    json.dump(data, open("trace.json", "w"))
    ...
    execution = execution_from_dict(json.load(open("trace.json")))

The format stores per-process event streams (kind, message id, peer) and
the message table (src, dst, endpoints); loading re-validates everything by
rebuilding the execution, so a corrupted trace fails loudly rather than
producing an inconsistent object.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.core.events import EventKind
from repro.core.execution import Execution, ExecutionBuilder, ExecutionError
from repro.topology.graph import CommunicationGraph

FORMAT_VERSION = 1


def graph_to_dict(graph: CommunicationGraph) -> Dict[str, Any]:
    """Serialize a communication graph."""
    return {
        "n_vertices": graph.n_vertices,
        "edges": [list(e) for e in graph.edges],
    }


def graph_from_dict(data: Dict[str, Any]) -> CommunicationGraph:
    """Deserialize a communication graph."""
    return CommunicationGraph(
        int(data["n_vertices"]),
        [(int(u), int(v)) for u, v in data["edges"]],
    )


def execution_to_dict(execution: Execution) -> Dict[str, Any]:
    """Serialize an execution (and its graph, if any)."""
    events: List[List[Dict[str, Any]]] = []
    for p in range(execution.n_processes):
        stream = []
        for ev in execution.events_at(p):
            entry: Dict[str, Any] = {"kind": ev.kind.value}
            if ev.msg_id is not None:
                entry["msg"] = ev.msg_id
            stream.append(entry)
        events.append(stream)
    return {
        "version": FORMAT_VERSION,
        "n_processes": execution.n_processes,
        "graph": (
            graph_to_dict(execution.graph)
            if execution.graph is not None
            else None
        ),
        "events": events,
        "messages": [
            {
                "src": m.src,
                "dst": m.dst,
                "send": [m.send_event.proc, m.send_event.index],
                "recv": (
                    [m.recv_event.proc, m.recv_event.index]
                    if m.recv_event is not None
                    else None
                ),
            }
            for m in execution.messages
        ],
    }


def execution_from_dict(data: Dict[str, Any]) -> Execution:
    """Rebuild (and re-validate) an execution from its dict form.

    The trace is replayed through :class:`ExecutionBuilder` in a causally
    consistent order, so every model invariant is re-checked on load.
    """
    if data.get("version") != FORMAT_VERSION:
        raise ExecutionError(
            f"unsupported trace version {data.get('version')!r}"
        )
    graph = (
        graph_from_dict(data["graph"]) if data.get("graph") else None
    )
    n = int(data["n_processes"])
    builder = ExecutionBuilder(n, graph=graph)

    messages = data["messages"]
    cursors = [0] * n
    emitted = [len(stream) for stream in data["events"]]
    builder_msg: Dict[int, int] = {}

    def replay_one(p: int) -> None:
        entry = data["events"][p][cursors[p]]
        kind = EventKind(entry["kind"])
        if kind is EventKind.LOCAL:
            builder.local(p)
        elif kind is EventKind.SEND:
            m = messages[entry["msg"]]
            if list(m["send"]) != [p, cursors[p] + 1]:
                raise ExecutionError(
                    "trace message table disagrees with event stream"
                )
            builder_msg[entry["msg"]] = builder.send(p, int(m["dst"]))
        else:
            if entry["msg"] not in builder_msg:
                raise ExecutionError(
                    "trace is not causally consistent: receive before send"
                )
            builder.receive(p, builder_msg[entry["msg"]])
        cursors[p] += 1

    # Replay sends in original msg-id order so builder ids match the trace.
    # Any receive encountered while advancing a sender's cursor is of an
    # earlier-sent (hence already replayed) message — message ids are
    # assigned in temporal send order.
    for idx, m in enumerate(messages):
        sp, si = int(m["send"][0]), int(m["send"][1])
        if not (0 <= sp < n and 1 <= si <= emitted[sp]):
            raise ExecutionError("message send endpoint out of range")
        while cursors[sp] < si:
            replay_one(sp)
        if builder_msg.get(idx) is None:
            raise ExecutionError(
                "trace message table disagrees with event stream"
            )
    # flush remaining events (locals and receives after the last send)
    done = sum(cursors)
    total = sum(emitted)
    while done < total:
        progressed = False
        for p in range(n):
            while cursors[p] < emitted[p]:
                entry = data["events"][p][cursors[p]]
                if (
                    EventKind(entry["kind"]) is EventKind.RECEIVE
                    and entry["msg"] not in builder_msg
                ):
                    break
                replay_one(p)
                done += 1
                progressed = True
        if not progressed:
            raise ExecutionError("trace is not causally consistent")
    execution = builder.freeze()

    # verify undelivered messages match the trace
    for idx, m in enumerate(messages):
        rebuilt = execution.message(builder_msg[idx])
        if m["recv"] is None and rebuilt.delivered:
            raise ExecutionError("trace marks a delivered message in flight")
    return execution


def save_execution(
    execution: Execution, path: Union[str, Path]
) -> None:
    """Write an execution trace as JSON."""
    Path(path).write_text(
        json.dumps(execution_to_dict(execution), indent=1)
    )


def load_execution(path: Union[str, Path]) -> Execution:
    """Load and re-validate an execution trace."""
    return execution_from_dict(json.loads(Path(path).read_text()))

"""Array-native causality kernel: numpy backend for the bitset rows.

The pure kernel (:mod:`repro.core.happened_before`) stores each event's
strict causal past as one packed Python int.  This module stores the same
matrix as a contiguous ``(m, W)`` ``uint64`` array with ``W = ceil(m/64)``
— row ``j``, word ``w`` holds bits ``64w .. 64w+63`` of event ``j``'s past,
little-endian, so ``row.tobytes()`` is exactly the ``int.to_bytes`` of the
pure row.  Everything here is pinned byte-identical to the pure kernel by
the conformance fuzzer's ``backend-differential`` invariant and the
hypothesis parity suite.

Construction does not replay ``delivery_order()`` event by event.  Only
receives merge information across processes, so each row decomposes as::

    row(p, i) = A[anchor(p, i)] | own-prefix bits [base_p, base_p + i - 1)

where ``anchor(p, i)`` is the latest receive at ``p`` with local index
``< i`` (or the zero row).  Each receive's anchor row depends on at most
two earlier receives (its process predecessor and its send's anchor), so
the anchors form a DAG processed in topological order with two bulk
``OR``s per receive; every non-anchor row is then a single gather plus a
scatter of contiguous own-prefix intervals.  Net cost: O(receives) numpy
row ops instead of O(events) Python big-int ops — the "bulk row path" the
PR-7 benchmark gates at ≥2M appends/s.

Intentionally import-guarded: import this module only after
:func:`repro.core.backend.numpy_available` returns True.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

FULL = np.uint64(0xFFFFFFFFFFFFFFFF)
U64 = np.uint64
#: LOWC[r] = word with the low ``r`` bits set, r in 0..64
LOWC = np.concatenate(
    [(U64(1) << np.arange(64, dtype=np.uint64)) - U64(1), [FULL]]
)


def scatter_or_intervals(
    target: np.ndarray, row_of: np.ndarray, lo: Any, hi: Any
) -> None:
    """``target[row_of[t], w] |= bits of [lo[t], hi[t]) falling in word w``.

    Flat scatter: work is proportional to the number of *touched words*,
    not rows×width.  Empty intervals (``hi <= lo``) are allowed and
    skipped; ``row_of`` may repeat rows (the scatter ORs, fancy-index
    assignment would not — pairs within one call must be unique, which
    holds for the disjoint per-word interval decomposition used here).
    """
    lo = np.asarray(lo, dtype=np.int64)
    hi = np.asarray(hi, dtype=np.int64)
    keep = hi > lo
    if not keep.all():
        row_of = row_of[keep]
        lo = lo[keep]
        hi = hi[keep]
    if len(lo) == 0:
        return
    w0 = lo >> 6
    w1 = (hi - 1) >> 6
    spans = w1 - w0 + 1
    total = int(spans.sum())
    starts = np.cumsum(spans) - spans
    off = np.arange(total, dtype=np.int64) - np.repeat(starts, spans)
    col = np.repeat(w0, spans) + off
    rows_f = np.repeat(row_of, spans)
    # value: full word, trimmed at the interval's first and last word
    vals = np.full(total, FULL, dtype=np.uint64)
    first = off == 0
    last = col == np.repeat(w1, spans)
    np.bitwise_and(
        vals, ~LOWC[np.repeat(lo & 63, spans)], out=vals, where=first
    )
    np.bitwise_and(
        vals, LOWC[np.repeat(((hi - 1) & 63) + 1, spans)], out=vals, where=last
    )
    target[rows_f, col] |= vals


def bulk_past_matrix(execution) -> np.ndarray:
    """The strict causal-past matrix of *execution*, built by bulk row ops.

    Byte-identical to the pure kernel's ``past_masks()`` rows under the
    same process-major dense indexing.  Raises ``RuntimeError`` if the
    receive dependencies contain a cycle (a causally inconsistent
    execution, which a well-formed :class:`~repro.core.execution.Execution`
    cannot produce).
    """
    nproc = execution.n_processes
    # event_counts/receive_pairs avoid touching event or message objects —
    # on the columnar store they read straight from the id columns
    # (getattr fallback keeps duck-typed execution stand-ins working)
    counts_fn = getattr(execution, "event_counts", None)
    if counts_fn is not None:
        counts = np.asarray(counts_fn(), dtype=np.int64)
    else:
        counts = np.array(
            [len(execution.events_at(p)) for p in range(nproc)],
            dtype=np.int64,
        )
    m = int(counts.sum())
    W = max(1, (m + 63) >> 6)
    bases = np.zeros(nproc, dtype=np.int64)
    if nproc > 1:
        np.cumsum(counts[:-1], out=bases[1:])
    if m == 0:
        return np.zeros((0, W), dtype=np.uint64)

    pairs_fn = getattr(execution, "receive_pairs", None)
    if pairs_fn is not None:
        recvs = pairs_fn()
    else:
        recvs = [
            (msg.recv_event, msg.send_event)
            for msg in execution.messages
            if msg.recv_event is not None
        ]
    n_recv = len(recvs)
    # anchor rows, 1-based; row 0 stays zero (= "no receive before me")
    anchors = np.zeros((n_recv + 1, W), dtype=np.uint64)

    if n_recv:
        # per-process receive positions, sorted by local index, with the
        # anchor id (k+1) of each — the bisect lookups below require order
        by_proc: List[List[Tuple[int, int]]] = [[] for _ in range(nproc)]
        for k, (re, _se) in enumerate(recvs):
            by_proc[re.proc].append((re.index, k + 1))
        ridx: List[List[int]] = [[] for _ in range(nproc)]
        rk: List[List[int]] = [[] for _ in range(nproc)]
        for p, pairs in enumerate(by_proc):
            pairs.sort()
            ridx[p] = [i for i, _ in pairs]
            rk[p] = [k1 for _, k1 in pairs]
        # each receive depends on <= 2 earlier receives: its process
        # predecessor (paid) and the last receive before its send (said)
        paid = [0] * n_recv
        said = [0] * n_recv
        indeg = [0] * n_recv
        children: List[List[int]] = [[] for _ in range(n_recv)]
        p_arr = np.empty(n_recv, dtype=np.int64)
        i_arr = np.empty(n_recv, dtype=np.int64)
        sp_arr = np.empty(n_recv, dtype=np.int64)
        si_arr = np.empty(n_recv, dtype=np.int64)
        for k, (re, se) in enumerate(recvs):
            p, i, sp, si = re.proc, re.index, se.proc, se.index
            p_arr[k], i_arr[k], sp_arr[k], si_arr[k] = p, i, sp, si
            j = bisect_left(ridx[p], i)
            if j:
                paid[k] = rk[p][j - 1]
                indeg[k] += 1
                children[rk[p][j - 1] - 1].append(k)
            j = bisect_left(ridx[sp], si)
            if j:
                said[k] = rk[sp][j - 1]
                if said[k] != paid[k]:
                    indeg[k] += 1
                    children[rk[sp][j - 1] - 1].append(k)
        # seed every anchor with its fixed contribution:
        # own prefix [ob, ob+i-1) | send prefix [sb, sb+si-1) | send bit
        ob = bases[p_arr]
        sb = bases[sp_arr]
        ar1 = np.arange(1, n_recv + 1)
        scatter_or_intervals(anchors, ar1, ob, ob + i_arr - 1)
        scatter_or_intervals(anchors, ar1, sb, sb + si_arr - 1)
        sd = sb + si_arr - 1
        anchors[ar1, sd >> 6] |= U64(1) << (sd & 63).astype(np.uint64)
        # chain the anchors in dependency order: two bulk ORs per receive
        queue = deque(k for k in range(n_recv) if indeg[k] == 0)
        done = 0
        while queue:
            k = queue.popleft()
            done += 1
            out = anchors[k + 1]
            out |= anchors[paid[k]]
            out |= anchors[said[k]]
            for c in children[k]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    queue.append(c)
        if done != n_recv:
            raise RuntimeError("execution is not causally consistent")

        # anchor id per dense position: the latest receive at the same
        # process with a strictly smaller local index (vectorized lookup)
        recv_dense: List[int] = []
        recv_aid: List[int] = []
        basel = bases.tolist()
        for p in range(nproc):
            b = basel[p]
            for i, k1 in zip(ridx[p], rk[p]):
                recv_dense.append(b + i - 1)
                recv_aid.append(k1)
        dense_arr = np.array(recv_dense, dtype=np.int64)
        aid_arr = np.array(recv_aid, dtype=np.int64)
        g = np.searchsorted(dense_arr, np.arange(m), side="right")
        base_g = np.repeat(
            np.searchsorted(dense_arr, bases, side="left"), counts
        )
        aid = np.where(g - base_g > 0, aid_arr[np.clip(g - 1, 0, None)], 0)
        rows = anchors[aid]
    else:
        rows = np.zeros((m, W), dtype=np.uint64)

    # triangular own-prefix fill: bits [bases[p], d) for the event at d
    d = np.arange(m, dtype=np.int64)
    scatter_or_intervals(rows, d, np.repeat(bases, counts), d)
    return rows


# ----------------------------------------------------------------------
# matrix <-> packed-int interop
# ----------------------------------------------------------------------
def matrix_to_rows(mat: np.ndarray) -> List[int]:
    """All rows as packed Python ints (the pure kernel's representation)."""
    m, W = mat.shape
    buf = np.ascontiguousarray(mat).tobytes()
    stride = W * 8
    return [
        int.from_bytes(buf[j * stride : (j + 1) * stride], "little")
        for j in range(m)
    ]


def row_int(mat: np.ndarray, j: int) -> int:
    """One row as a packed Python int."""
    return int.from_bytes(np.ascontiguousarray(mat[j]).tobytes(), "little")


def union_rows_int(mat: np.ndarray, idx: Sequence[int]) -> int:
    """OR of the selected rows, as a packed Python int."""
    acc = np.bitwise_or.reduce(mat[np.asarray(idx, dtype=np.intp)], axis=0)
    return int.from_bytes(np.ascontiguousarray(acc).tobytes(), "little")


def ordered_pair_count(mat: np.ndarray) -> int:
    """Total popcount of the matrix = number of ordered (e, f) pairs."""
    return int(np.bitwise_count(mat).sum(dtype=np.int64))


def vector_clocks_from_matrix(
    mat: np.ndarray, counts: Sequence[int]
) -> List[List[int]]:
    """Full-length vector clocks of every event, from the past matrix.

    ``vc[e][p]`` counts the events of process ``p`` in the causal past of
    ``e`` *including* ``e`` at its own coordinate — the Fidge/Mattern
    definition.  Process-major indexing makes each process one contiguous
    bit range, so the count is a masked popcount per block.  Returned as
    nested Python-int lists (``tolist``), matching the pure kernel's
    tuples element-for-element.
    """
    m = mat.shape[0]
    nproc = len(counts)
    cnt = np.zeros((m, nproc), dtype=np.int64)
    base = 0
    for p, c in enumerate(counts):
        if c == 0:
            continue
        lo, hi = base, base + c
        base = hi
        w0, w1 = lo >> 6, (hi - 1) >> 6
        sub = mat[:, w0 : w1 + 1].copy()
        sub[:, 0] &= ~LOWC[lo & 63]
        sub[:, -1] &= LOWC[((hi - 1) & 63) + 1]
        cnt[:, p] = np.bitwise_count(sub).sum(axis=1, dtype=np.int64)
    if m:
        # own coordinate: strict past inside the own block is index-1
        own = np.repeat(np.arange(nproc), np.asarray(counts, dtype=np.int64))
        cnt[np.arange(m), own] += 1
    return cnt.tolist()


# ----------------------------------------------------------------------
# scheme-side fast path: standard vector comparison, word-parallel
# ----------------------------------------------------------------------
def standard_vector_matrix(
    vectors: Sequence[Tuple[Any, ...]],
) -> Optional[np.ndarray]:
    """Precedes matrix under the standard vector comparison (``<=``, ``!=``).

    The array twin of :func:`repro.clocks.base.standard_vector_rows`: bit
    ``i`` of row ``j`` is set iff ``vectors[i] < vectors[j]``
    componentwise-strictly.  Per coordinate, one argsort of the composite
    key ``value * W + word`` groups equal values *and* target words in a
    single pass; grouped ORs (``bitwise_or.reduceat``) plus a cumulative
    OR down the groups give the dominance mask, ANDed across coordinates;
    equal-vector groups are then cleared.

    Returns ``None`` — caller falls back to the pure path — when the
    input is ragged, non-numeric, or has non-finite / non-integral float
    entries (e.g. the lower-bound schemes' ``INFINITY`` posts); the pure
    sweep handles those via Python's total order on mixed numerics.
    """
    m = len(vectors)
    if m == 0:
        return np.zeros((0, 1), dtype=np.uint64)
    V = np.asarray(vectors)
    if V.ndim != 2 or V.dtype == object:
        return None
    if not np.issubdtype(V.dtype, np.integer):
        if not np.issubdtype(V.dtype, np.floating):
            return None
        if not np.isfinite(V).all():
            return None
        Vi = V.astype(np.int64)
        if not (Vi == V).all():
            return None
        V = Vi
    else:
        V = V.astype(np.int64, copy=False)
    n = V.shape[1]
    W = (m + 63) >> 6
    if n == 0:
        # every vector equals every other: nothing strictly precedes
        return np.zeros((m, W), dtype=np.uint64)
    rows = np.full((m, W), FULL, dtype=np.uint64)
    idx = np.arange(m)
    col = idx >> 6
    val_all = U64(1) << (idx & 63).astype(np.uint64)
    gid_orig = np.empty(m, dtype=np.intp)
    tmp = np.empty_like(rows)
    starts = np.empty(m, dtype=bool)
    sub = np.empty(m, dtype=bool)
    for k in range(n):
        keys = V[:, k]
        # composite (value, word) key: 0 <= col < W keeps it lexicographic
        comp = keys * W + col
        perm = np.argsort(comp)
        cs = comp[perm]
        ks = keys[perm]
        starts[0] = True
        np.not_equal(ks[1:], ks[:-1], out=starts[1:])
        sub[0] = True
        np.not_equal(cs[1:], cs[:-1], out=sub[1:])
        gid = np.cumsum(starts) - 1
        substart = np.flatnonzero(sub)
        orvals = np.bitwise_or.reduceat(val_all[perm], substart)
        grouped = np.zeros((int(gid[-1]) + 1, W), dtype=np.uint64)
        grouped[gid[substart], cs[substart] - ks[substart] * W] = orvals
        np.bitwise_or.accumulate(grouped, axis=0, out=grouped)
        gid_orig[perm] = gid
        np.take(grouped, gid_orig, axis=0, out=tmp)
        np.bitwise_and(rows, tmp, out=rows)
    # equal-vector removal: vectors never strictly precede their equals
    perm = np.lexsort(V.T[::-1])
    Vs = V[perm]
    starts[0] = True
    np.any(Vs[1:] != Vs[:-1], axis=1, out=starts[1:])
    gid = np.cumsum(starts) - 1
    comp = gid * W + col[perm]
    sub[0] = True
    np.not_equal(comp[1:], comp[:-1], out=sub[1:])
    substart = np.flatnonzero(sub)
    orvals = np.bitwise_or.reduceat(val_all[perm], substart)
    grouped = np.zeros((int(gid[-1]) + 1, W), dtype=np.uint64)
    grouped[comp[substart] // W, comp[substart] % W] = orvals
    gid_orig[perm] = gid
    np.take(grouped, gid_orig, axis=0, out=tmp)
    rows &= ~tmp
    return rows

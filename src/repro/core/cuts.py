"""Consistent cuts of an execution.

A *cut* assigns to every process a prefix of its events; it is *consistent*
when it is causally closed — no event in the cut causally depends on an event
outside it.  Consistent cuts are the backbone of the paper's application
story (Section 6): with inline timestamps, applications operate on the
largest consistent cut that contains only events whose timestamps have been
*finalized*, and that cut grows toward the full execution as timestamps
become permanent.

Cuts are represented as tuples of per-process event counts: ``cut[i] == k``
means the first ``k`` events of process ``i`` are inside the cut.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, Set, Tuple

from repro.core.events import EventId
from repro.core.happened_before import HappenedBeforeOracle

#: A cut: entry ``i`` is the number of events of process ``i`` inside it.
Cut = Tuple[int, ...]


def empty_cut(n_processes: int) -> Cut:
    """The cut containing no events."""
    return (0,) * n_processes


def full_cut(oracle: HappenedBeforeOracle) -> Cut:
    """The cut containing every event of the oracle's execution."""
    ex = oracle.execution
    return tuple(len(ex.events_at(p)) for p in range(ex.n_processes))


def events_in_cut(oracle: HappenedBeforeOracle, cut: Cut) -> Set[EventId]:
    """The set of event ids inside *cut*."""
    return set(oracle.events_from_mask(oracle.cut_mask(cut)))


def is_consistent(oracle: HappenedBeforeOracle, cut: Cut) -> bool:
    """Whether *cut* is causally closed.

    Uses the bitset kernel: a cut is consistent iff the causal past of each
    frontier event is a subset of the cut's own event mask (one word-parallel
    subset test per nonempty process prefix).
    """
    ex = oracle.execution
    cut_mask = oracle.cut_mask(cut)  # also validates length and ranges
    outside = ~cut_mask
    for p in range(ex.n_processes):
        k = cut[p]
        if k == 0:
            continue
        frontier = ex.events_at(p)[k - 1]
        if oracle.causal_past_mask(frontier.eid) & outside:
            return False
    return True


def join(a: Cut, b: Cut) -> Cut:
    """Pointwise max.  The join of two consistent cuts is consistent."""
    return tuple(max(x, y) for x, y in zip(a, b, strict=True))


def meet(a: Cut, b: Cut) -> Cut:
    """Pointwise min.  The meet of two consistent cuts is consistent."""
    return tuple(min(x, y) for x, y in zip(a, b, strict=True))


def max_consistent_cut_within(
    oracle: HappenedBeforeOracle,
    allowed: Callable[[EventId], bool],
) -> Cut:
    """The largest consistent cut whose events all satisfy *allowed*.

    This is the paper's Section-6 construction: "consider a cut of the system
    that removes all events e such that timestamp_e = ⊥; when we remove event
    e, we must also remove every event f with e -> f".  Concretely, start
    from the longest per-process prefix of allowed events and repeatedly
    shrink any process whose frontier event causally depends on a removed
    event, until a fixpoint is reached.

    The result is the unique maximum such cut (the set of consistent cuts
    within an allowed downward-closed region forms a lattice).
    """
    ex = oracle.execution
    n = ex.n_processes

    cut = []
    for p in range(n):
        k = 0
        for ev in ex.events_at(p):
            if allowed(ev.eid):
                k += 1
            else:
                break
        cut.append(k)

    mask = oracle.cut_mask(tuple(cut))
    changed = True
    while changed:
        changed = False
        for p in range(n):
            while cut[p] > 0:
                frontier = ex.events_at(p)[cut[p] - 1]
                if oracle.causal_past_mask(frontier.eid) & ~mask:
                    cut[p] -= 1
                    mask &= ~(1 << oracle.index_of(frontier.eid))
                    changed = True
                else:
                    break
    return tuple(cut)


def cut_from_events(
    oracle: HappenedBeforeOracle, events: Iterable[EventId]
) -> Cut:
    """The smallest consistent cut containing all of *events*.

    Computed as the join of the causal-past closures of each event.
    """
    ex = oracle.execution
    cut = [0] * ex.n_processes
    for eid in events:
        vc = oracle.vector_clock(eid)
        for p in range(ex.n_processes):
            if vc[p] > cut[p]:
                cut[p] = vc[p]
    return tuple(cut)


def frontier(oracle: HappenedBeforeOracle, cut: Cut) -> Sequence[EventId]:
    """The last event of each nonempty per-process prefix of *cut*."""
    ex = oracle.execution
    out = []
    for p in range(ex.n_processes):
        if cut[p] > 0:
            out.append(ex.events_at(p)[cut[p] - 1].eid)
    return out


def cut_size(cut: Cut) -> int:
    """Total number of events inside *cut*."""
    return sum(cut)

"""Random execution generation for property-based testing and fuzzing.

Generates executions directly (no virtual-time simulation): at each step
the generator either delivers a random in-flight message, performs a local
event, or sends along a random edge of the communication graph.  Every
interleaving produced this way is a valid asynchronous execution; messages
may remain undelivered, and per-channel ordering is deliberately *not* FIFO
— the paper's model allows arbitrary reordering and the clock algorithms
must tolerate it.

Two layers:

- :func:`random_ops` produces the execution as a flat list of *ops* —
  ``("local", p)``, ``("send", m, u, v)``, ``("recv", m)`` — where ``m`` is
  a stable message tag.  Ops are plain tuples of ints/strs, so they
  JSON-serialize, diff cleanly, and can be *edited*: the conformance
  shrinker (:mod:`repro.conformance.shrinker`) deletes ops and re-validates
  with :func:`normalize_ops`.
- :func:`execution_from_ops` replays an op list through the validating
  :class:`~repro.core.execution.ExecutionBuilder`, and
  :func:`random_execution` composes the two (its random stream is
  unchanged from when it built executions directly).

An optional :class:`~repro.faults.models.FaultModel` lets the fuzzer reuse
the structured fault schedules from :mod:`repro.faults`: each send consults
``message_fate`` (with the step index as virtual time) and a dropped
message simply never becomes deliverable — the send event still exists,
exercising the undelivered-message paths of every clock scheme.  Message
duplication and crash schedules are not representable here (the execution
model matches each message to at most one receive), so only the drop
component of a fate is honored.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.execution import Execution, ExecutionBuilder
from repro.topology.graph import CommunicationGraph

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.faults.models import FaultModel

#: One generation step: ``("local", proc)``, ``("send", tag, src, dst)``,
#: or ``("recv", tag)``.  Tags are assigned in send order and stay attached
#: to their send when ops are deleted, so a shrunk op list still names the
#: same messages.
Op = Tuple  # heterogeneous; see above


def random_ops(
    graph: CommunicationGraph,
    rng: random.Random,
    steps: int = 30,
    p_deliver: float = 0.45,
    p_local: float = 0.15,
    deliver_all: bool = False,
    fifo: bool = False,
    fault: Optional["FaultModel"] = None,
) -> List[Op]:
    """Generate the op list of a random execution over *graph*.

    Parameters
    ----------
    steps:
        Number of generation steps (each produces one event).
    p_deliver:
        Probability a step delivers a random in-flight message (when any).
    p_local:
        Probability a step is a local event (otherwise a send on a random
        edge; graphs with no edges only produce local events).
    deliver_all:
        Deliver every remaining in-flight message at the end, in random
        order (useful when full finalization is desired).
    fifo:
        Enforce per-directed-channel FIFO delivery: a delivery step picks a
        random channel with in-flight messages and delivers its *oldest*
        one.  Needed by schemes that assume FIFO channels (e.g.
        :class:`~repro.clocks.vector_sk.SKVectorClock`).
    fault:
        Optional fault model; each send consults
        ``fault.message_fate(src, dst, now=step, rng)`` and a ``drop`` fate
        leaves the message undelivered forever (it never enters the
        in-flight set, and ``deliver_all`` does not resurrect it).
    """
    if steps < 0:
        raise ValueError("steps must be >= 0")
    if fault is not None:
        reset = getattr(fault, "reset", None)
        if callable(reset):
            reset(rng)
    ops: List[Op] = []
    edges = list(graph.edges)
    in_flight: List[Tuple[int, int, int]] = []  # (tag, src, dst)
    next_tag = 0

    def deliver_one() -> None:
        if fifo:
            channels = sorted({(s, d) for _m, s, d in in_flight})
            src, dst = channels[rng.randrange(len(channels))]
            idx = next(
                i
                for i, (_m, s, d) in enumerate(in_flight)
                if (s, d) == (src, dst)
            )
        else:
            idx = rng.randrange(len(in_flight))
        tag, _src, _dst = in_flight.pop(idx)
        ops.append(("recv", tag))

    for step in range(steps):
        roll = rng.random()
        if in_flight and roll < p_deliver:
            deliver_one()
        elif not edges or roll < p_deliver + p_local:
            ops.append(("local", rng.randrange(graph.n_vertices)))
        else:
            u, v = edges[rng.randrange(len(edges))]
            if rng.random() < 0.5:
                u, v = v, u
            tag = next_tag
            next_tag += 1
            ops.append(("send", tag, u, v))
            dropped = False
            if fault is not None:
                fate = fault.message_fate(u, v, float(step), rng)
                dropped = fate.drop
            if not dropped:
                in_flight.append((tag, u, v))
    if deliver_all:
        if fifo:
            while in_flight:
                deliver_one()
        else:
            rng.shuffle(in_flight)
            for tag, _src, _dst in in_flight:
                ops.append(("recv", tag))
    return ops


def normalize_ops(ops: Sequence[Op]) -> List[Op]:
    """Drop ops invalidated by deletions, keeping the rest in order.

    A ``recv`` survives only if its send appears earlier in the (possibly
    shrunk) list and the tag has not been received before.  This is the
    closure the shrinker relies on: any subsequence of a valid op list
    normalizes to a valid op list.
    """
    sent: set = set()
    received: set = set()
    out: List[Op] = []
    for op in ops:
        kind = op[0]
        if kind == "send":
            sent.add(op[1])
        elif kind == "recv":
            tag = op[1]
            if tag not in sent or tag in received:
                continue
            received.add(tag)
        out.append(op)
    return out


def execution_from_ops(
    graph: CommunicationGraph, ops: Sequence[Op], builder=None
) -> Execution:
    """Build a validated :class:`Execution` from an op list.

    Raises :class:`~repro.core.execution.ExecutionError` (or ``ValueError``
    for malformed ops) when the list is not a valid execution — run
    :func:`normalize_ops` first after editing an op list.  *builder*
    substitutes a drop-in replacement for the default
    :class:`~repro.core.execution.ExecutionBuilder` (the conformance
    fuzzer's store differential replays the same ops through the columnar
    builder this way).
    """
    if builder is None:
        builder = ExecutionBuilder(graph.n_vertices, graph=graph)
    msg_ids: dict = {}  # tag -> builder MessageId
    for op in ops:
        kind = op[0]
        if kind == "local":
            builder.local(op[1])
        elif kind == "send":
            tag, src, dst = op[1], op[2], op[3]
            if tag in msg_ids:
                raise ValueError(f"duplicate send tag {tag}")
            msg_ids[tag] = builder.send(src, dst)
        elif kind == "recv":
            tag = op[1]
            if tag not in msg_ids:
                raise ValueError(f"recv of unknown tag {tag}")
            msg = builder.message(msg_ids[tag])
            builder.receive(msg.dst, msg_ids[tag])
        else:
            raise ValueError(f"unknown op kind {kind!r}")
    return builder.freeze()


def random_execution(
    graph: CommunicationGraph,
    rng: random.Random,
    steps: int = 30,
    p_deliver: float = 0.45,
    p_local: float = 0.15,
    deliver_all: bool = False,
    fifo: bool = False,
    fault: Optional["FaultModel"] = None,
) -> Execution:
    """A random execution over *graph* (see :func:`random_ops`)."""
    ops = random_ops(
        graph,
        rng,
        steps=steps,
        p_deliver=p_deliver,
        p_local=p_local,
        deliver_all=deliver_all,
        fifo=fifo,
        fault=fault,
    )
    return execution_from_ops(graph, ops)

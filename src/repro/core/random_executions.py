"""Random execution generation for property-based testing and fuzzing.

Generates executions directly (no virtual-time simulation): at each step
the generator either delivers a random in-flight message, performs a local
event, or sends along a random edge of the communication graph.  Every
interleaving produced this way is a valid asynchronous execution; messages
may remain undelivered, and per-channel ordering is deliberately *not* FIFO
— the paper's model allows arbitrary reordering and the clock algorithms
must tolerate it.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.core.execution import Execution, ExecutionBuilder
from repro.topology.graph import CommunicationGraph


def random_execution(
    graph: CommunicationGraph,
    rng: random.Random,
    steps: int = 30,
    p_deliver: float = 0.45,
    p_local: float = 0.15,
    deliver_all: bool = False,
    fifo: bool = False,
) -> Execution:
    """A random execution over *graph*.

    Parameters
    ----------
    steps:
        Number of generation steps (each produces one event).
    p_deliver:
        Probability a step delivers a random in-flight message (when any).
    p_local:
        Probability a step is a local event (otherwise a send on a random
        edge; graphs with no edges only produce local events).
    deliver_all:
        Deliver every remaining in-flight message at the end, in random
        order (useful when full finalization is desired).
    fifo:
        Enforce per-directed-channel FIFO delivery: a delivery step picks a
        random channel with in-flight messages and delivers its *oldest*
        one.  Needed by schemes that assume FIFO channels (e.g.
        :class:`~repro.clocks.vector_sk.SKVectorClock`).
    """
    if steps < 0:
        raise ValueError("steps must be >= 0")
    builder = ExecutionBuilder(graph.n_vertices, graph=graph)
    edges = list(graph.edges)
    in_flight: List[Tuple[int, int, int]] = []  # (msg_id, src, dst)

    def deliver_one() -> None:
        if fifo:
            channels = sorted({(s, d) for _m, s, d in in_flight})
            src, dst = channels[rng.randrange(len(channels))]
            idx = next(
                i
                for i, (_m, s, d) in enumerate(in_flight)
                if (s, d) == (src, dst)
            )
        else:
            idx = rng.randrange(len(in_flight))
        msg_id, _src, dst = in_flight.pop(idx)
        builder.receive(dst, msg_id)

    for _ in range(steps):
        roll = rng.random()
        if in_flight and roll < p_deliver:
            deliver_one()
        elif not edges or roll < p_deliver + p_local:
            builder.local(rng.randrange(graph.n_vertices))
        else:
            u, v = edges[rng.randrange(len(edges))]
            if rng.random() < 0.5:
                u, v = v, u
            msg_id = builder.send(u, v)
            in_flight.append((msg_id, u, v))
    if deliver_all:
        if fifo:
            while in_flight:
                deliver_one()
        else:
            rng.shuffle(in_flight)
            for msg_id, _src, dst in in_flight:
                builder.receive(dst, msg_id)
    return builder.freeze()

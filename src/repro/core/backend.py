"""Kernel backend selection for the causality oracle.

The happened-before kernel has two interchangeable implementations:

- ``pure`` — packed Python-int bitmask rows, always available, the
  reference every other path is validated against;
- ``numpy`` — the same rows stored as a contiguous ``(m, ceil(m/64))``
  ``uint64`` matrix (structure-of-arrays) with bulk-OR construction and
  vectorized popcounts (:mod:`repro.core.npkernel`).  Byte-identical to
  ``pure`` — the conformance fuzzer's ``backend-differential`` invariant
  and the hypothesis parity suite pin that equivalence.

Selection is a three-level override chain, strongest first:

1. an explicit ``backend=`` argument at a construction site;
2. a process-wide preference via :func:`set_backend` /
   :func:`use_backend` or the ``REPRO_KERNEL_BACKEND`` environment
   variable;
3. ``auto`` — numpy when importable *and* the execution is large enough
   (:data:`NUMPY_MIN_EVENTS`) for the vectorized paths to win; tiny
   executions stay on the pure kernel, whose fixed costs are lower.

numpy is an optional dependency (``pip install "repro[fast]"``);
every consumer goes through :func:`numpy_available` so its absence never
raises, it just pins the resolution to ``pure``.

The module also hosts the analogous *event-store* seam: ``object``
(per-event heap objects) vs ``columnar``
(:mod:`repro.core.colstore` structure-of-arrays), selected through
:func:`resolve_store` / :func:`set_store` / ``REPRO_EVENT_STORE``.
The columnar store needs nothing beyond the standard library, so unlike
the kernel there is no availability probe — only preference.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

#: ``auto`` resolves to numpy only at or above this event count — below it
#: the pure kernel's lower fixed costs win (measured crossover ~a few
#: hundred events; see ``tools/bench_snapshot.py --pr7-out``).
NUMPY_MIN_EVENTS = 512

#: environment variable consulted when no process-wide override is set
ENV_VAR = "REPRO_KERNEL_BACKEND"

BACKENDS = ("auto", "pure", "numpy")

#: environment variable selecting the event-store implementation
STORE_ENV_VAR = "REPRO_EVENT_STORE"

#: event-store flavors: ``object`` is the per-event heap-object model
#: (:class:`~repro.core.execution.ExecutionBuilder`), ``columnar`` the
#: structure-of-arrays :class:`~repro.core.colstore.EventStore`.  ``auto``
#: currently resolves to ``object`` — the columnar store is opt-in (CI
#: runs a whole tier-1 leg with it forced on).
STORES = ("auto", "object", "columnar")

#: process-wide override installed by :func:`set_backend` (None = unset)
_forced: Optional[str] = None

#: process-wide store override installed by :func:`set_store` (None = unset)
_forced_store: Optional[str] = None

#: memoized numpy availability probe (None = not probed yet)
_numpy_ok: Optional[bool] = None


def numpy_available() -> bool:
    """Whether the numpy backend can be used in this interpreter.

    Requires numpy >= 2.0 (``np.bitwise_count``); older versions count as
    unavailable rather than failing later on a missing ufunc.
    """
    global _numpy_ok
    if _numpy_ok is None:
        try:
            import numpy as np

            _numpy_ok = hasattr(np, "bitwise_count")
        except ImportError:
            _numpy_ok = False
    return _numpy_ok


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {BACKENDS}"
        )
    return name


def backend_preference() -> str:
    """The process-wide preference: forced > ``$REPRO_KERNEL_BACKEND`` > auto."""
    if _forced is not None:
        return _forced
    env = os.environ.get(ENV_VAR)
    if env:
        return _validate(env)
    return "auto"


def set_backend(name: Optional[str]) -> None:
    """Install (or with ``None`` clear) the process-wide backend preference."""
    global _forced
    _forced = _validate(name) if name is not None else None


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Scoped :func:`set_backend`: restores the previous preference on exit."""
    global _forced
    prev = _forced
    _forced = _validate(name)
    try:
        yield
    finally:
        _forced = prev


def resolve_backend(n_events: int, override: Optional[str] = None) -> str:
    """Decide ``"pure"`` or ``"numpy"`` for an oracle over *n_events* events.

    *override* is the construction-site argument and wins outright;
    ``"numpy"`` (from either level) is a hard request — it raises if numpy
    is unavailable, rather than silently degrading a caller that asked for
    the fast kernel by name.
    """
    choice = _validate(override) if override is not None else backend_preference()
    if choice == "auto":
        if numpy_available() and n_events >= NUMPY_MIN_EVENTS:
            return "numpy"
        return "pure"
    if choice == "numpy" and not numpy_available():
        raise RuntimeError(
            "kernel backend 'numpy' requested but numpy>=2.0 is not "
            "installed (pip install numpy, or the [fast] extra)"
        )
    return choice


# ----------------------------------------------------------------------
# event-store selection (the REPRO_EVENT_STORE seam)
# ----------------------------------------------------------------------
def _validate_store(name: str) -> str:
    if name not in STORES:
        raise ValueError(
            f"unknown event store {name!r}; expected one of {STORES}"
        )
    return name


def store_preference() -> str:
    """The process-wide store preference: forced > ``$REPRO_EVENT_STORE`` > auto."""
    if _forced_store is not None:
        return _forced_store
    env = os.environ.get(STORE_ENV_VAR)
    if env:
        return _validate_store(env)
    return "auto"


def set_store(name: Optional[str]) -> None:
    """Install (or with ``None`` clear) the process-wide store preference."""
    global _forced_store
    _forced_store = _validate_store(name) if name is not None else None


@contextmanager
def use_store(name: str) -> Iterator[None]:
    """Scoped :func:`set_store`: restores the previous preference on exit."""
    global _forced_store
    prev = _forced_store
    _forced_store = _validate_store(name)
    try:
        yield
    finally:
        _forced_store = prev


def resolve_store(override: Optional[str] = None) -> str:
    """Decide ``"object"`` or ``"columnar"`` for an execution builder.

    *override* is the construction-site argument (e.g.
    ``Simulation(event_store=...)``) and wins outright; otherwise the
    process preference applies, with ``auto`` resolving to the object
    store — columnar is opt-in, never silently swapped in.  Unlike the
    kernel seam there is no availability question: the columnar store is
    pure stdlib (``array``), so every resolution is always honourable.
    """
    choice = (
        _validate_store(override)
        if override is not None
        else store_preference()
    )
    return "object" if choice == "auto" else choice

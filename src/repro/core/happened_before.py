"""Ground-truth happened-before oracle, backed by a bitset kernel.

The oracle derives Lamport's happened-before relation [Lamport 1978] directly
from an :class:`~repro.core.execution.Execution`, independently of any clock
algorithm under test.  It is the reference against which every timestamping
scheme in the library is validated.

Implementation: events are assigned dense indices (process-major, the order
of :meth:`Execution.all_events`), and one causally consistent pass over
``delivery_order()`` computes, per event, its *strict causal past* as a
packed Python-int bitmask::

    past[f] = bits of every e with e -> f

The recurrence is word-parallel — a receive's mask is the union of its local
predecessor's mask and the matching send's mask (plus their own bits) — so
the whole matrix costs O(|E|) big-int unions of |E|/64 words each.  On top
of the rows:

- ``happened_before(e, f)`` is a single bit test;
- ``causal_past`` / ``causal_future`` decode one row (futures come from one
  lazy reverse pass over the same order);
- ``relation_counts`` is ``int.bit_count()`` over the rows;
- consistent-cut checks reduce to mask subset tests (see
  :mod:`repro.core.cuts`), because process-major indexing makes every cut a
  union of per-process contiguous bit ranges.

Full-length (``n``-entry) vector clocks are still computed in the same pass
— they remain the textbook characterization (Fidge 1991, Mattern 1988) used
by :meth:`vector_clock` consumers and by the property tests that
cross-check the bitset kernel against the vector-clock definition::

    e -> f   iff   vc_e[e.proc] <= vc_f[e.proc]

The row store has two interchangeable backends (see
:mod:`repro.core.backend`): ``pure`` keeps the packed Python ints described
above; ``numpy`` keeps the same matrix as a contiguous ``uint64`` array
built by bulk row ops (:mod:`repro.core.npkernel`) and answers
``relation_counts`` / :func:`downward_closure` with whole-matrix
vectorized popcounts and ORs.  Both produce byte-identical rows; the pure
backend is the always-available reference.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.backend import resolve_backend
from repro.core.events import Event, EventId
from repro.core.execution import Execution
from repro.obs.metrics import active_registry


class HappenedBeforeOracle:
    """O(1) happened-before queries over a fixed execution."""

    def __init__(
        self, execution: Execution, backend: Optional[str] = None
    ) -> None:
        self._execution = execution
        #: dense event indexing: process-major, index order within a process
        self._order: Tuple[EventId, ...] = tuple(
            ev.eid for ev in execution.all_events()
        )
        self._pos: Dict[EventId, int] = {
            eid: i for i, eid in enumerate(self._order)
        }
        #: first dense index of each process's events (the per-process block)
        self._proc_base: Tuple[int, ...] = self._compute_proc_bases()
        #: strict causal-future bitmask per dense index (built lazily)
        self._future: Optional[List[int]] = None
        #: which kernel holds the rows ("pure" or "numpy")
        self.backend: str = resolve_backend(len(self._order), backend)
        #: numpy (m, ceil(m/64)) uint64 past matrix (numpy backend only)
        self._mat: Optional[Any] = None
        if self.backend == "numpy":
            from repro.core import npkernel

            self._mat = npkernel.bulk_past_matrix(execution)
            # packed-int rows and vector clocks materialize lazily from
            # the matrix, only for consumers that ask for them
            self._past: Optional[List[int]] = None
            self._vc: Optional[Dict[EventId, Tuple[int, ...]]] = None
        else:
            self._vc = {}
            #: strict causal-past bitmask per dense index
            self._past = [0] * len(self._order)
            self._compute()
        active_registry().gauge("oracle.backend", backend=self.backend).set(1)

    @classmethod
    def from_parts(
        cls,
        execution: Execution,
        past_rows: List[int],
        vector_clocks: Dict[EventId, Tuple[int, ...]],
    ) -> "HappenedBeforeOracle":
        """Assemble an oracle from precomputed rows, skipping the batch pass.

        Used by :meth:`repro.core.incremental.IncrementalHBOracle.freeze` to
        hand over incrementally maintained state.  *past_rows* must be the
        strict causal-past masks in this class's dense (process-major)
        indexing, and *vector_clocks* must cover every event; the caller
        guarantees both describe *execution* — the equivalence property
        tests pin that the handoff is byte-identical to a fresh build.
        """
        self = cls.__new__(cls)
        self._execution = execution
        self._vc = dict(vector_clocks)
        self._order = tuple(ev.eid for ev in execution.all_events())
        self._pos = {eid: i for i, eid in enumerate(self._order)}
        self._proc_base = self._compute_proc_bases()
        if len(past_rows) != len(self._order):
            raise ValueError(
                f"expected {len(self._order)} rows, got {len(past_rows)}"
            )
        self._past = list(past_rows)
        self._future = None
        self.backend = "pure"
        self._mat = None
        active_registry().gauge("oracle.backend", backend=self.backend).set(1)
        return self

    @property
    def execution(self) -> Execution:
        return self._execution

    def _compute_proc_bases(self) -> Tuple[int, ...]:
        bases = []
        offset = 0
        for p in range(self._execution.n_processes):
            bases.append(offset)
            offset += len(self._execution.events_at(p))
        return tuple(bases)

    def _compute(self) -> None:
        ex = self._execution
        n = ex.n_processes
        pos = self._pos
        past = self._past
        vc = self._vc
        assert past is not None and vc is not None  # pure backend only
        proc_clock: List[List[int]] = [[0] * n for _ in range(n)]
        #: running mask per process: strict past of that process's *next* event
        proc_mask = [0] * n
        for ev in ex.delivery_order():
            p = ev.proc
            clock = proc_clock[p]
            mask = proc_mask[p]
            if ev.is_receive:
                send_eid = ex.send_of(ev).eid
                sp = pos[send_eid]
                mask |= past[sp] | (1 << sp)
                send_vc = vc[send_eid]
                for k in range(n):
                    if send_vc[k] > clock[k]:
                        clock[k] = send_vc[k]
            clock[p] += 1
            i = pos[ev.eid]
            past[i] = mask
            proc_mask[p] = mask | (1 << i)
            vc[ev.eid] = tuple(clock)

    def _ensure_future(self) -> List[int]:
        """Build the strict causal-future masks with one reverse pass.

        In ``delivery_order()`` every event precedes its immediate causal
        successors (the next event at its process; for sends, the matching
        receive), so walking the order backwards sees successors first.
        """
        if self._future is not None:
            return self._future
        ex = self._execution
        pos = self._pos
        fut = [0] * len(self._order)
        for ev in reversed(ex.delivery_order()):
            mask = 0
            at_proc = ex.events_at(ev.proc)
            if ev.index < len(at_proc):  # next local event (1-based index)
                j = pos[at_proc[ev.index].eid]
                mask |= fut[j] | (1 << j)
            if ev.is_send:
                recv = ex.receive_of(ev)
                if recv is not None:
                    j = pos[recv.eid]
                    mask |= fut[j] | (1 << j)
            fut[pos[ev.eid]] = mask
        self._future = fut
        return fut

    def _ensure_past(self) -> List[int]:
        """Packed-int rows, materialized once from the matrix if needed."""
        if self._past is None:
            from repro.core import npkernel

            self._past = npkernel.matrix_to_rows(self._mat)
        return self._past

    def _ensure_vc(self) -> Dict[EventId, Tuple[int, ...]]:
        """Vector clocks, materialized once from the matrix if needed."""
        if self._vc is None:
            from repro.core import npkernel

            ex = self._execution
            counts = [
                len(ex.events_at(p)) for p in range(ex.n_processes)
            ]
            clocks = npkernel.vector_clocks_from_matrix(self._mat, counts)
            self._vc = {
                eid: tuple(clocks[i]) for i, eid in enumerate(self._order)
            }
        return self._vc

    # ------------------------------------------------------------------
    # bitset kernel surface
    # ------------------------------------------------------------------
    @property
    def event_order(self) -> Tuple[EventId, ...]:
        """The dense indexing used by the masks (process-major)."""
        return self._order

    def index_of(self, eid: EventId) -> int:
        """Dense index of *eid* in :attr:`event_order`."""
        return self._pos[eid]

    def causal_past_mask(self, f: EventId) -> int:
        """Bitmask of ``{e : e -> f}`` over :attr:`event_order` indices."""
        return self._ensure_past()[self._pos[f]]

    def causal_future_mask(self, e: EventId) -> int:
        """Bitmask of ``{f : e -> f}`` over :attr:`event_order` indices."""
        return self._ensure_future()[self._pos[e]]

    def past_masks(self) -> Tuple[int, ...]:
        """All strict causal-past rows: bit ``i`` of row ``j`` is set iff
        ``event_order[i] -> event_order[j]``."""
        return tuple(self._ensure_past())

    def past_matrix(self) -> Optional[Any]:
        """The numpy ``(m, ceil(m/64))`` uint64 past matrix, or ``None``
        on the pure backend.  Rows little-endian-match :meth:`past_masks`;
        callers must treat it as read-only."""
        return self._mat

    def events_from_mask(self, mask: int) -> List[EventId]:
        """Decode a bitmask into the events it denotes, in dense order."""
        order = self._order
        out: List[EventId] = []
        while mask:
            lsb = mask & -mask
            out.append(order[lsb.bit_length() - 1])
            mask ^= lsb
        return out

    def cut_mask(self, cut: Tuple[int, ...]) -> int:
        """Bitmask of the events inside a cut (per-process prefix lengths).

        Process-major indexing makes each process's events one contiguous
        bit range, so a cut is a union of low-bit runs shifted into place.
        """
        ex = self._execution
        if len(cut) != ex.n_processes:
            raise ValueError("cut length must equal the number of processes")
        mask = 0
        for p, k in enumerate(cut):
            if k < 0 or k > len(ex.events_at(p)):
                raise ValueError(f"cut[{p}]={k} out of range for process {p}")
            if k:
                mask |= ((1 << k) - 1) << self._proc_base[p]
        return mask

    # ------------------------------------------------------------------
    def vector_clock(self, eid: EventId) -> Tuple[int, ...]:
        """The ground-truth full-length vector clock of *eid*."""
        return self._ensure_vc()[eid]

    def _bit(self, pe: int, pf: int) -> bool:
        """Bit *pe* of row *pf*, without materializing packed-int rows."""
        if self._past is not None:
            return bool(self._past[pf] >> pe & 1)
        return bool(int(self._mat[pf, pe >> 6]) >> (pe & 63) & 1)

    def happened_before(self, e: EventId, f: EventId) -> bool:
        """Whether ``e -> f`` (strict: ``e != f`` and e causally precedes f)."""
        return self._bit(self._pos[e], self._pos[f])

    def leq(self, e: EventId, f: EventId) -> bool:
        """Whether ``e == f`` or ``e -> f``."""
        return e == f or self.happened_before(e, f)

    def concurrent(self, e: EventId, f: EventId) -> bool:
        """Whether *e* and *f* are distinct and causally unordered."""
        pe, pf = self._pos[e], self._pos[f]
        return pe != pf and not self._bit(pe, pf) and not self._bit(pf, pe)

    # ------------------------------------------------------------------
    def causal_past(self, f: EventId) -> Set[EventId]:
        """All events ``e`` with ``e -> f`` (excluding *f* itself)."""
        return set(self.events_from_mask(self.causal_past_mask(f)))

    def causal_future(self, e: EventId) -> Set[EventId]:
        """All events ``f`` with ``e -> f``."""
        return set(self.events_from_mask(self.causal_future_mask(e)))

    def pairs(self) -> Iterator[Tuple[EventId, EventId]]:
        """All ordered pairs of distinct events (for exhaustive checks)."""
        ids = self._order
        for e in ids:
            for f in ids:
                if e != f:
                    yield e, f

    def relation_counts(self) -> Tuple[int, int]:
        """Return ``(ordered_pairs, concurrent_unordered_pairs)``.

        ``ordered_pairs`` counts ordered pairs ``(e, f)`` with ``e -> f``;
        ``concurrent_unordered_pairs`` counts unordered concurrent pairs.
        Happened-before is antisymmetric, so the former is just the popcount
        of the causal-past matrix, and the latter is the complement among
        all unordered pairs.
        """
        if self._mat is not None:
            from repro.core import npkernel

            ordered = npkernel.ordered_pair_count(self._mat)
        else:
            ordered = sum(mask.bit_count() for mask in self._past)
        m = len(self._order)
        return ordered, m * (m - 1) // 2 - ordered


def downward_closure(
    oracle: HappenedBeforeOracle, events: Iterable[EventId]
) -> Set[EventId]:
    """The smallest causally-closed set containing *events*.

    A set ``S`` is causally closed (a *consistent cut*, as a set of events)
    when ``f in S`` and ``e -> f`` imply ``e in S``.  Computed as one mask
    union per seed event — or, on the numpy backend, as one whole-matrix
    row gather + OR-reduction.
    """
    seeds = list(events)
    mat = oracle.past_matrix()
    if mat is not None and seeds:
        from repro.core import npkernel

        idx = [oracle.index_of(f) for f in seeds]
        mask = npkernel.union_rows_int(mat, idx)
        for i in idx:
            mask |= 1 << i
    else:
        mask = 0
        for f in seeds:
            mask |= oracle.causal_past_mask(f) | (1 << oracle.index_of(f))
    return set(oracle.events_from_mask(mask))

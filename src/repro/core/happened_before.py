"""Ground-truth happened-before oracle.

The oracle derives Lamport's happened-before relation [Lamport 1978] directly
from an :class:`~repro.core.execution.Execution`, independently of any clock
algorithm under test.  It is the reference against which every timestamping
scheme in the library is validated.

Implementation: we compute full-length (``n``-entry) vector clocks offline by
replaying the execution in a causally consistent total order.  With standard
vector clocks, for distinct events ``e`` and ``f``::

    e -> f   iff   vc_e[e.proc] <= vc_f[e.proc]

which gives O(1) causality queries after O(|E| * n) preprocessing.  This is
the textbook characterization (Fidge 1991, Mattern 1988) and is used here as
*ground truth*, not as the algorithm under study.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.core.events import Event, EventId
from repro.core.execution import Execution


class HappenedBeforeOracle:
    """O(1) happened-before queries over a fixed execution."""

    def __init__(self, execution: Execution) -> None:
        self._execution = execution
        self._vc: Dict[EventId, Tuple[int, ...]] = {}
        self._compute()

    @property
    def execution(self) -> Execution:
        return self._execution

    def _compute(self) -> None:
        n = self._execution.n_processes
        proc_clock: List[List[int]] = [[0] * n for _ in range(n)]
        for ev in self._execution.delivery_order():
            clock = proc_clock[ev.proc]
            if ev.is_receive:
                send_vc = self._vc[self._execution.send_of(ev).eid]
                for k in range(n):
                    if send_vc[k] > clock[k]:
                        clock[k] = send_vc[k]
            clock[ev.proc] += 1
            self._vc[ev.eid] = tuple(clock)

    # ------------------------------------------------------------------
    def vector_clock(self, eid: EventId) -> Tuple[int, ...]:
        """The ground-truth full-length vector clock of *eid*."""
        return self._vc[eid]

    def happened_before(self, e: EventId, f: EventId) -> bool:
        """Whether ``e -> f`` (strict: ``e != f`` and e causally precedes f)."""
        if e == f:
            return False
        return self._vc[e][e.proc] <= self._vc[f][e.proc]

    def leq(self, e: EventId, f: EventId) -> bool:
        """Whether ``e == f`` or ``e -> f``."""
        return e == f or self.happened_before(e, f)

    def concurrent(self, e: EventId, f: EventId) -> bool:
        """Whether *e* and *f* are distinct and causally unordered."""
        return (
            e != f
            and not self.happened_before(e, f)
            and not self.happened_before(f, e)
        )

    # ------------------------------------------------------------------
    def causal_past(self, f: EventId) -> Set[EventId]:
        """All events ``e`` with ``e -> f`` (excluding *f* itself)."""
        vc = self._vc[f]
        return {
            ev.eid
            for ev in self._execution.all_events()
            if ev.eid != f and ev.index <= vc[ev.proc]
        }

    def causal_future(self, e: EventId) -> Set[EventId]:
        """All events ``f`` with ``e -> f``."""
        return {
            ev.eid
            for ev in self._execution.all_events()
            if self.happened_before(e, ev.eid)
        }

    def pairs(self) -> Iterator[Tuple[EventId, EventId]]:
        """All ordered pairs of distinct events (for exhaustive checks)."""
        ids = [ev.eid for ev in self._execution.all_events()]
        for e in ids:
            for f in ids:
                if e != f:
                    yield e, f

    def relation_counts(self) -> Tuple[int, int]:
        """Return ``(ordered_pairs, concurrent_unordered_pairs)``.

        ``ordered_pairs`` counts ordered pairs ``(e, f)`` with ``e -> f``;
        ``concurrent_unordered_pairs`` counts unordered concurrent pairs.
        """
        ordered = 0
        concurrent = 0
        ids = [ev.eid for ev in self._execution.all_events()]
        for i, e in enumerate(ids):
            for f in ids[i + 1 :]:
                if self.happened_before(e, f) or self.happened_before(f, e):
                    ordered += 1
                else:
                    concurrent += 1
        return ordered, concurrent


def downward_closure(
    oracle: HappenedBeforeOracle, events: Iterable[EventId]
) -> Set[EventId]:
    """The smallest causally-closed set containing *events*.

    A set ``S`` is causally closed (a *consistent cut*, as a set of events)
    when ``f in S`` and ``e -> f`` imply ``e in S``.
    """
    out: Set[EventId] = set()
    for f in events:
        out.add(f)
        out |= oracle.causal_past(f)
    return out

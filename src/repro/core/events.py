"""Event and message model for asynchronous message-passing executions.

The paper studies an asynchronous system of ``n`` processes communicating
over point-to-point channels.  Each process produces a totally ordered
sequence of *events*; an event is a local step, the send of a message, or the
receipt of a message.  This module defines the immutable value objects used
everywhere else in the library:

- :class:`EventKind` — local / send / receive.
- :class:`EventId` — a ``(process, index)`` pair; ``index`` starts at 1,
  matching the paper's convention that the first event at a process has
  ``ctr = 1``.
- :class:`Event` — an event together with its message context.
- :class:`Message` — a message with identity, endpoints, and the events that
  sent/received it.

Events are deliberately *dumb data*: all semantics (happened-before, cuts,
timestamps) live in :mod:`repro.core.execution`,
:mod:`repro.core.happened_before`, and :mod:`repro.clocks`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

#: Processes are identified by dense integer ids ``0 .. n-1``.
ProcessId = int

#: Messages are identified by dense integer ids in order of sending.
MessageId = int


class EventKind(enum.Enum):
    """The three kinds of events in an asynchronous execution."""

    LOCAL = "local"
    SEND = "send"
    RECEIVE = "receive"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventKind.{self.name}"


@dataclass(frozen=True, order=True, slots=True)
class EventId:
    """Identity of an event: the process it occurred on and its 1-based index.

    ``EventId(j, x)`` is the paper's :math:`e_x^j` — the ``x``-th event at
    process ``p_j``.  The ordering defined here (process-major) is only used
    for deterministic iteration; it has no causal meaning.
    """

    proc: ProcessId
    index: int

    def __post_init__(self) -> None:
        if self.proc < 0:
            raise ValueError(f"process id must be >= 0, got {self.proc}")
        if self.index < 1:
            raise ValueError(f"event index must be >= 1, got {self.index}")

    def __str__(self) -> str:
        return f"e{self.index}@p{self.proc}"


@dataclass(frozen=True, slots=True)
class Message:
    """A point-to-point message.

    Attributes
    ----------
    msg_id:
        Dense id assigned in send order (unique within an execution).
    src, dst:
        Sending and receiving process.
    send_event:
        The :class:`EventId` of the send.
    recv_event:
        The :class:`EventId` of the receive, or ``None`` while in flight.
    """

    msg_id: MessageId
    src: ProcessId
    dst: ProcessId
    send_event: EventId
    recv_event: Optional[EventId] = None

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("self-messages are not part of the model")
        if self.send_event.proc != self.src:
            raise ValueError("send event must occur at the source process")
        if self.recv_event is not None and self.recv_event.proc != self.dst:
            raise ValueError("receive event must occur at the destination")

    @property
    def delivered(self) -> bool:
        """Whether the message has been received."""
        return self.recv_event is not None

    def with_receive(self, recv_event: EventId) -> "Message":
        """Return a copy of this message marked as received at *recv_event*."""
        if self.recv_event is not None:
            raise ValueError(f"message {self.msg_id} already delivered")
        return Message(self.msg_id, self.src, self.dst, self.send_event, recv_event)


@dataclass(frozen=True, slots=True)
class Event:
    """An event in an execution.

    For ``SEND`` and ``RECEIVE`` events, :attr:`msg_id` identifies the message
    involved; for ``LOCAL`` events it is ``None``.  :attr:`peer` is the other
    endpoint of that message (the destination for a send, the source for a
    receive), kept denormalized because clock algorithms consult it on every
    step.
    """

    eid: EventId
    kind: EventKind
    msg_id: Optional[MessageId] = None
    peer: Optional[ProcessId] = None

    def __post_init__(self) -> None:
        if self.kind is EventKind.LOCAL:
            if self.msg_id is not None or self.peer is not None:
                raise ValueError("local events carry no message")
        else:
            if self.msg_id is None or self.peer is None:
                raise ValueError(f"{self.kind.value} events need msg_id and peer")
            if self.peer == self.eid.proc:
                raise ValueError("peer must differ from the event's process")

    @property
    def proc(self) -> ProcessId:
        """The process the event occurred on."""
        return self.eid.proc

    @property
    def index(self) -> int:
        """The 1-based index of the event at its process (the paper's ctr)."""
        return self.eid.index

    @property
    def is_send(self) -> bool:
        return self.kind is EventKind.SEND

    @property
    def is_receive(self) -> bool:
        return self.kind is EventKind.RECEIVE

    @property
    def is_local(self) -> bool:
        return self.kind is EventKind.LOCAL

    def __str__(self) -> str:
        tag = {EventKind.LOCAL: "L", EventKind.SEND: "S", EventKind.RECEIVE: "R"}[
            self.kind
        ]
        extra = "" if self.msg_id is None else f"(m{self.msg_id})"
        return f"{self.eid}:{tag}{extra}"

"""Incremental happened-before oracle: streaming O(Δ) appends.

The batch :class:`~repro.core.happened_before.HappenedBeforeOracle` is
constructed over a *completed* execution, so every online consumer — the
Section-6 application detectors, the simulator's invariant checks — used to
rebuild the full O(|E|²)-bit causal-past matrix from scratch whenever it
needed an answer mid-run.  :class:`IncrementalHBOracle` maintains the same
packed-int causal-past rows *as events are appended*:

- ``append_local`` / ``append_send`` extend one row by copying the process's
  running mask (amortized O(row-words) big-int work);
- ``append_receive`` additionally ORs in the matching send's row — the same
  word-parallel recurrence the batch kernel uses, applied once per event
  instead of once per rebuild;
- row storage grows in fixed-size *chunks* of bit-indices handed to each
  process on demand, so no append ever re-indexes or rebuilds existing rows.

Because causal pasts are append-monotone (appending an event never changes
the row of an existing event), every answer the oracle gives online is
*final* — exactly why conflict/predicate detection can act on it while the
execution is still running.

On top of the rows sits a memoized batch-query layer: ``precedes`` /
``concurrent`` / ``causal_past`` / ``causal_frontier`` / ``relation_counts``
results are cached in a small LRU that is invalidated wholesale whenever the
append watermark moves, so repeated queries between appends (the detector
polling pattern) cost one dict hit.

``freeze(execution)`` converts the chunked rows to the batch oracle's
process-major dense indexing (a block-wise bit permutation, one pass) and
returns a genuine :class:`HappenedBeforeOracle` whose rows, vector clocks,
and query answers are byte-identical to one built from scratch over the
completed execution — pinned by ``tests/core/test_incremental_oracle.py``.

**Batched appends** (``batch=True``): instead of finalizing each row at
append time, appends land in a small columnar buffer (slot assignment and
ordering validation still happen immediately) and rows are constructed
chunk-at-a-time on the first query, ``freeze``, or explicit
:meth:`~IncrementalHBOracle.flush`.  Correctness is unaffected — every
query flushes first, so answers are identical to the per-op path (pinned
by ``tests/core/test_colstore_parity.py`` and the conformance fuzzer's
streaming-vs-batch invariant) — but the per-event Python overhead
(method dispatch, O(n) vector-clock merges, per-event metrics) amortizes
away.  Two flush engines, chosen via :mod:`repro.core.backend`:

- *pure* — one lean big-int loop over the buffer; vector clocks are still
  maintained eagerly, everything else is hoisted out of the loop;
- *numpy* — rows live in a ``(slots, W)`` uint64 matrix; runs of
  non-receive events become one broadcast row-assign plus a triangular
  :func:`~repro.core.npkernel.scatter_or_intervals` fill, receives are
  two word-parallel row ORs, and vector clocks are computed lazily by
  masked popcounts (chunk allocation is word-aligned in this mode).

Observability (:mod:`repro.obs`): ``oracle.appends``, ``oracle.append_words``
(big-int words touched by appends), and ``oracle.query_cache_hit`` /
``oracle.query_cache_miss`` counters on the registry active at construction.
Batched mode bulk-increments the append counters at flush time; totals are
identical to the per-op path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.core.events import Event, EventId, ProcessId
from repro.core.execution import Execution
from repro.core.happened_before import HappenedBeforeOracle
from repro.obs.metrics import MetricsRegistry, active_registry

#: sentinel distinguishing "cached None" from "absent"
_MISS = object()

#: thread-local scratch arena for the vectorized flush: the (B, W) row
#: buffer is transient within one _flush_np_arrays call, so all oracles
#: on a thread share one geometrically-grown allocation instead of each
#: paying fresh-page faults per instance
_flush_tls = threading.local()


def _flush_scratch(B: int, W: int):
    """A >= (B, W) uint64 scratch block, reused across flushes."""
    import numpy as np

    scratch = getattr(_flush_tls, "scratch", None)
    if scratch is None or scratch.shape[0] < B or scratch.shape[1] != W:
        cap = B if scratch is None else max(B, scratch.shape[0])
        scratch = np.empty((max(cap, 1024), W), dtype=np.uint64)
        _flush_tls.scratch = scratch
    return scratch[:B]

#: either oracle flavor — helpers below coerce to the batch one when needed
AnyOracle = Union[HappenedBeforeOracle, "IncrementalHBOracle"]


class IncrementalHBOracle:
    """Happened-before oracle maintained event-by-event while a run streams.

    Parameters
    ----------
    n_processes:
        Number of processes (fixed up front, like every clock algorithm).
    chunk:
        Bit-indices handed to a process per allocation.  Larger chunks mean
        fewer, cheaper ``freeze`` permutation segments; smaller chunks waste
        fewer trailing bits on short processes.  The default (64) aligns
        with CPython's 2³⁰-digit limbs well enough in practice.
    cache_size:
        Maximum entries in the memoized query LRU.
    registry:
        Metrics registry for the ``oracle.*`` instruments; defaults to the
        registry active at construction time.
    batch:
        Buffer appends and construct rows chunk-at-a-time on the first
        query / ``freeze`` (see the module docstring).  Answers are
        identical to the per-op path; streaming throughput is several
        times higher.
    backend:
        Flush engine for batched mode (``"pure"`` / ``"numpy"`` /
        ``"auto"``/``None``); resolution follows
        :mod:`repro.core.backend` preferences, with ``auto`` taking numpy
        whenever it is available (streaming has no final size to
        threshold on).  Ignored when ``batch=False``.
    """

    def __init__(
        self,
        n_processes: int,
        *,
        chunk: int = 64,
        cache_size: int = 1024,
        registry: Optional[MetricsRegistry] = None,
        batch: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        if n_processes < 1:
            raise ValueError("need at least one process")
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self._n = n_processes
        self._batch = bool(batch)
        self._use_np = False
        if self._batch:
            from repro.core.backend import (
                _validate,
                backend_preference,
                numpy_available,
            )

            choice = (
                _validate(backend)
                if backend is not None
                else backend_preference()
            )
            if choice == "numpy" and not numpy_available():
                raise RuntimeError(
                    "kernel backend 'numpy' requested but numpy>=2.0 is "
                    "not installed (pip install numpy, or the [fast] extra)"
                )
            self._use_np = choice != "pure" and numpy_available()
            if self._use_np:
                # the lazy vector-clock popcounts index whole uint64 words
                # per chunk, so chunk allocation must be word-aligned
                chunk = ((chunk + 63) >> 6) << 6
        self._chunk = chunk
        #: strict causal-past bitmask per slot (chunk-granular allocation)
        self._rows: List[int] = []
        #: slot -> owning EventId (None for not-yet-used slots of a chunk)
        self._slot_eid: List[Optional[EventId]] = []
        #: per process: base slot of each chunk allocated to it, in order
        self._chunks: List[List[int]] = [[] for _ in range(n_processes)]
        #: events appended so far per process
        self._counts: List[int] = [0] * n_processes
        #: running mask per process: strict past of its *next* event
        self._proc_mask: List[int] = [0] * n_processes
        self._proc_clock: List[List[int]] = [
            [0] * n_processes for _ in range(n_processes)
        ]
        self._vc: Dict[EventId, Tuple[int, ...]] = {}
        #: running popcount of all rows — makes relation_counts O(1)
        self._ordered_pairs = 0
        #: total slots allocated (chunk-granular top of the slot space)
        self._n_slots = 0
        # batched-append state: parallel buffer columns (slot, send slot
        # or -1, proc), plus the numpy row matrix when _use_np
        self._buf_slot: List[int] = []
        self._buf_send: List[int] = []
        self._buf_proc: List[int] = []
        self._mat = None  # (cap_slots, cap_words) uint64, numpy mode only
        self._pm = None  # (n, cap_words) running process masks, numpy mode
        #: per process: uint64 word indices covering its chunks (numpy mode)
        self._proc_words: List[List[int]] = [[] for _ in range(n_processes)]
        # columnar-store sync state: the bound EventStore (drained lazily
        # by flush), rows ingested so far, and store row -> slot (numpy)
        self._src_store = None
        self._synced_rows = 0
        self._row_slot = None
        # per-slot / per-process top-set-bit trackers (numpy mode): let
        # the vectorized flush account append words without re-scanning
        # the row matrix for each batch's highest words
        self._slot_top = None
        self._pm_top = None
        #: slot-space chunk ordinal -> (proc, per-proc chunk ordinal); lets
        #: _eid_of_slot recover owners without per-event _slot_eid entries
        self._chunk_owner: List[Tuple[int, int]] = []
        self._watermark = 0
        self._cache: "OrderedDict[tuple, object]" = OrderedDict()
        self._cache_size = cache_size
        self._cache_watermark = 0
        reg = registry if registry is not None else active_registry()
        self._m_appends = reg.counter("oracle.appends")
        self._m_append_words = reg.counter("oracle.append_words")
        self._m_cache_hit = reg.counter("oracle.query_cache_hit")
        self._m_cache_miss = reg.counter("oracle.query_cache_miss")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_processes(self) -> int:
        return self._n

    @property
    def n_events(self) -> int:
        """Events appended so far."""
        return self._watermark

    @property
    def watermark(self) -> int:
        """Monotone append counter; bumping it invalidates the query cache."""
        return self._watermark

    def event_count(self, proc: ProcessId) -> int:
        """Events appended at *proc* so far."""
        return self._counts[proc]

    def __contains__(self, eid: EventId) -> bool:
        return 0 <= eid.proc < self._n and eid.index <= self._counts[eid.proc]

    def _slot_of(self, eid: EventId) -> int:
        i = eid.index - 1
        if not 0 <= eid.proc < self._n or not 0 <= i < self._counts[eid.proc]:
            raise KeyError(f"{eid} has not been appended")
        return self._chunks[eid.proc][i // self._chunk] + i % self._chunk

    def _eid_of_slot(self, slot: int) -> EventId:
        """Owning EventId of *slot* — computed, not stored, when the slot
        was filled by :meth:`sync_store` (the bulk path skips the
        per-event ``_slot_eid`` writes)."""
        eid = self._slot_eid[slot]
        if eid is not None:
            return eid
        c, off = divmod(slot, self._chunk)
        p, ordinal = self._chunk_owner[c]
        return EventId(p, ordinal * self._chunk + off + 1)

    # ------------------------------------------------------------------
    # appends — the O(Δ) streaming surface
    # ------------------------------------------------------------------
    def _alloc_chunk(self, p: int) -> None:
        """Hand process *p* a fresh chunk at the top of the slot space."""
        base = self._n_slots
        self._chunks[p].append(base)
        self._chunk_owner.append((p, len(self._chunks[p]) - 1))
        self._n_slots = base + self._chunk
        self._slot_eid.extend([None] * self._chunk)
        if self._use_np:
            # chunk bases are word-aligned in numpy mode (chunk % 64 == 0),
            # so each chunk covers a contiguous run of whole uint64 words —
            # what the lazy vector-clock popcounts index per process
            self._proc_words[p].extend(
                range(base >> 6, (base + self._chunk) >> 6)
            )
        else:
            self._rows.extend([0] * self._chunk)

    def _append(
        self,
        eid: EventId,
        extra_mask: int = 0,
        send_vc: Optional[Tuple[int, ...]] = None,
    ) -> int:
        p = eid.proc
        if not 0 <= p < self._n:
            raise ValueError(f"process {p} out of range [0, {self._n})")
        if eid.index != self._counts[p] + 1:
            raise ValueError(
                f"out-of-order append: expected index {self._counts[p] + 1} "
                f"at p{p}, got {eid.index}"
            )
        i = self._counts[p]
        if i % self._chunk == 0:
            self._alloc_chunk(p)
        slot = self._chunks[p][i // self._chunk] + i % self._chunk
        mask = self._proc_mask[p] | extra_mask
        clock = self._proc_clock[p]
        if send_vc is not None:
            for k in range(self._n):
                if send_vc[k] > clock[k]:
                    clock[k] = send_vc[k]
        clock[p] += 1
        self._rows[slot] = mask
        self._slot_eid[slot] = eid
        self._proc_mask[p] = mask | (1 << slot)
        self._counts[p] = eid.index
        self._vc[eid] = tuple(clock)
        self._ordered_pairs += mask.bit_count()
        self._watermark += 1
        self._m_appends.inc()
        self._m_append_words.inc((mask.bit_length() >> 6) + 1)
        return slot

    def _append_buffered(self, eid: EventId, sslot: int = -1) -> None:
        """Batched-mode append: validate, assign a slot, defer the row.

        Ordering validation and slot assignment happen immediately — so
        ``_slot_of`` works on buffered events and errors surface at the
        offending append, not at flush — but the row mask, vector clock,
        and metrics wait for :meth:`flush`.
        """
        p = eid.proc
        if not 0 <= p < self._n:
            raise ValueError(f"process {p} out of range [0, {self._n})")
        i = self._counts[p]
        if eid.index != i + 1:
            raise ValueError(
                f"out-of-order append: expected index {i + 1} "
                f"at p{p}, got {eid.index}"
            )
        if i % self._chunk == 0:
            self._alloc_chunk(p)
        slot = self._chunks[p][i // self._chunk] + i % self._chunk
        self._slot_eid[slot] = eid
        self._counts[p] = eid.index
        self._buf_slot.append(slot)
        self._buf_send.append(sslot)
        self._buf_proc.append(p)
        self._watermark += 1

    def append_local(self, eid: EventId) -> None:
        """Record a local event.  Must be the next index at its process."""
        if self._batch:
            self._append_buffered(eid)
        else:
            self._append(eid)

    def append_send(self, eid: EventId) -> None:
        """Record a send event (causally identical to a local step)."""
        if self._batch:
            self._append_buffered(eid)
        else:
            self._append(eid)

    def append_receive(self, eid: EventId, send: EventId) -> None:
        """Record the receive matching the already-appended *send*."""
        sslot = self._slot_of(send)
        if self._batch:
            # the send may itself still be buffered; flush processes the
            # buffer in append order, so its row exists before this read
            self._append_buffered(eid, sslot)
        else:
            extra = self._rows[sslot] | (1 << sslot)
            self._append(eid, extra_mask=extra, send_vc=self._vc[send])

    def append_event(
        self, ev: Event, send: Optional[EventId] = None
    ) -> None:
        """Dispatch on the event kind; receives require the matching *send*."""
        if ev.is_receive:
            if send is None:
                raise ValueError(f"receive {ev.eid} needs its send event id")
            self.append_receive(ev.eid, send)
        else:
            self.append_local(ev.eid)

    def ingest(self, execution: Execution) -> "IncrementalHBOracle":
        """Stream a completed execution through the append path.

        Events are fed in ``delivery_order()`` (any causally consistent
        order yields identical rows).  Batched oracles fed a columnar
        execution skip event materialization entirely and bulk-append
        straight from the store's arrays.  Returns ``self`` for chaining.
        """
        if self._batch:
            store = getattr(execution, "store", None)
            if store is not None and (
                self._src_store is None or self._src_store is store
            ):
                self.sync_store(store)
                return self
        for ev in execution.delivery_order():
            if ev.is_receive:
                self.append_receive(ev.eid, execution.send_of(ev).eid)
            else:
                self.append_local(ev.eid)
        return self

    # ------------------------------------------------------------------
    # columnar-store sync — the bulk streaming surface
    # ------------------------------------------------------------------
    def bind_store(self, store) -> None:
        """Attach *store* (an :class:`~repro.core.colstore.EventStore`) as
        this oracle's append source.

        Instead of mirroring every event into the oracle with a Python
        call, the producer writes the columnar store once and every oracle
        query path drains the new rows in bulk via :meth:`flush` /
        :meth:`sync_store`.  ``n_events`` / ``event_count`` /
        ``__contains__`` reflect *synced* rows only, so call :meth:`flush`
        first when reading them directly.
        """
        if store.n_processes != self._n:
            raise ValueError(
                f"store has {store.n_processes} processes, "
                f"oracle was built for {self._n}"
            )
        if self._src_store is not None and self._src_store is not store:
            raise ValueError("oracle is already bound to a different store")
        self._src_store = store

    def sync_store(self, store, upto: Optional[int] = None) -> int:
        """Bulk-append store rows ``[synced_so_far, upto)``.

        This is the tentpole fast path: slots are assigned for a whole
        batch of rows with array arithmetic over the store's ``proc`` /
        ``seq`` columns, receives resolve their send slots through the
        store's message columns, and row construction goes through the
        same anchor-based flush engine as buffered appends — no per-event
        Python.  Rows must continue each process's sequence exactly where
        the oracle left off (they do whenever the oracle has only ever
        been fed from *store*).  Repeated calls ingest only what is new;
        *upto* (a row count) caps the batch for callers amortizing their
        own latency.  Returns the number of rows ingested.
        """
        if not self._batch:
            raise ValueError("sync_store requires a batch=True oracle")
        if store.n_processes != self._n:
            raise ValueError(
                f"store has {store.n_processes} processes, "
                f"oracle was built for {self._n}"
            )
        if self._src_store is not None and store is not self._src_store:
            raise ValueError("oracle is bound to a different store")
        # first sync pins the source: the synced-row counter is only
        # meaningful against one store, so a later different store must
        # error rather than silently appear fully-ingested
        self._src_store = store
        start = self._synced_rows
        stop = store.n_events if upto is None else min(upto, store.n_events)
        if stop <= start:
            return 0
        if self._buf_slot:
            # sends referenced by synced receives must already have rows
            self._flush_buffer()
        if self._use_np:
            self._sync_np(store, start, stop)
        else:
            self._sync_pure(store, start, stop)
        self._synced_rows = stop
        return stop - start

    def _sync_pure(self, store, start: int, stop: int) -> None:
        from repro.core.colstore import KIND_RECEIVE

        for row in range(start, stop):
            if store.kind_of(row) == KIND_RECEIVE:
                srow = store.send_row_of(store.msg_of(row))
                self._append_buffered(
                    store.event_id(row),
                    self._slot_of(store.event_id(srow)),
                )
            else:
                self._append_buffered(store.event_id(row))
        self._flush_buffer()

    def _sync_np(self, store, start: int, stop: int) -> None:
        import numpy as np

        from repro.core.colstore import KIND_RECEIVE

        B = stop - start
        i8 = np.int64
        proc = store.column("proc")[start:stop].astype(i8)
        seq = store.column("seq")[start:stop].astype(i8)
        kind = store.column("kind")[start:stop]
        chunk = self._chunk
        counts = np.asarray(self._counts, dtype=i8)
        addc = np.bincount(proc, minlength=self._n)
        offs = np.cumsum(addc) - addc
        # grouped-by-process positions straight from the seq column — the
        # store appends each process's sequence in order, so no argsort.
        # sorted_pos must be a permutation of [0, B); anything else means
        # the rows do not continue this oracle's per-process sequences
        # exactly (sequence-continuity validation, batch-at-a-time).
        i0 = seq - 1
        sorted_pos = offs[proc] + i0 - counts[proc]
        if (
            int(sorted_pos.min()) < 0
            or int(sorted_pos.max()) >= B
            or not np.bincount(sorted_pos, minlength=B).all()
        ):
            raise ValueError(
                "store rows do not continue this oracle's per-process "
                "event sequences (was the oracle fed from elsewhere?)"
            )
        order = np.empty(B, dtype=i8)
        order[sorted_pos] = np.arange(B, dtype=i8)
        # allocate chunks in first-touch order — the exact order the
        # per-event path would, so slot layout (and thus rows-as-integers
        # and the append_words accounting) is byte-identical to it
        for t in np.flatnonzero(i0 % chunk == 0):
            self._alloc_chunk(int(proc[t]))
        # vectorized slot assignment through a padded chunk-base table
        maxc = max(len(self._chunks[int(p)]) for p in np.flatnonzero(addc))
        cb = np.zeros((self._n, maxc), dtype=i8)
        for p in np.flatnonzero(addc):
            bases = self._chunks[int(p)]
            cb[p, : len(bases)] = bases
        slots = cb[proc, i0 // chunk] + i0 % chunk
        # store row -> slot, for resolving receives' send slots
        rs = self._row_slot
        if rs is None:
            rs = np.full(max(1024, stop), -1, dtype=i8)
        elif len(rs) < stop:
            grown = np.full(max(len(rs) * 2, stop), -1, dtype=i8)
            grown[: len(rs)] = rs
            rs = grown
        rs[start:stop] = slots
        self._row_slot = rs
        sends = np.full(B, -1, dtype=i8)
        send_bufpos = np.full(B, -1, dtype=i8)
        rmask = kind == KIND_RECEIVE
        if rmask.any():
            msg = store.column("msg")[start:stop].astype(i8)
            msend = store.column("msg_send_row").astype(i8)
            srows = msend[msg[rmask]]
            sslots = rs[srows]
            miss = sslots < 0
            if miss.any():
                # sends appended before the first sync (per-event path)
                for j in np.flatnonzero(miss):
                    r = int(srows[j])
                    s = self._slot_of(store.event_id(r))
                    sslots[j] = s
                    rs[r] = s
            sends[rmask] = sslots
            # in-batch sends are exactly the rows at or past *start* —
            # their buffer position falls straight out of the row number
            send_bufpos[rmask] = np.where(srows >= start, srows - start, -1)
        self._flush_np_arrays(
            slots, sends, proc, order=order, send_bufpos=send_bufpos
        )
        for p in np.flatnonzero(addc):
            self._counts[int(p)] += int(addc[p])
        self._watermark += B
        self._m_appends.inc(B)

    # ------------------------------------------------------------------
    # batched flush engines
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Finalize all buffered rows and drain any bound store.

        Every query path calls this implicitly; it is public so callers
        with latency deadlines can pick their own amortization points.
        No-op when nothing is pending.
        """
        if self._buf_slot:
            self._flush_buffer()
        store = self._src_store
        if store is not None and store.n_events > self._synced_rows:
            self.sync_store(store)

    def _pending(self) -> bool:
        if self._buf_slot:
            return True
        store = self._src_store
        return store is not None and store.n_events > self._synced_rows

    def _flush_buffer(self) -> None:
        if self._use_np:
            self._flush_np()
        else:
            self._flush_pure()
        n = len(self._buf_slot)
        self._m_appends.inc(n)
        self._buf_slot.clear()
        self._buf_send.clear()
        self._buf_proc.clear()

    def _flush_pure(self) -> None:
        """One lean big-int loop over the buffer (pure backend).

        Same recurrence as :meth:`_append` with everything hoistable
        hoisted: no method dispatch, no per-event metric calls.  Vector
        clocks stay eagerly maintained so ``freeze`` and ``vector_clock``
        behave exactly as in per-op mode.
        """
        rows = self._rows
        slot_eid = self._slot_eid
        pm = self._proc_mask
        clocks = self._proc_clock
        vc = self._vc
        n = self._n
        ordered = 0
        words = 0
        for slot, sslot, p in zip(
            self._buf_slot, self._buf_send, self._buf_proc
        ):
            mask = pm[p]
            clock = clocks[p]
            if sslot >= 0:
                mask |= rows[sslot] | (1 << sslot)
                svc = vc[slot_eid[sslot]]
                for k in range(n):
                    if svc[k] > clock[k]:
                        clock[k] = svc[k]
            clock[p] += 1
            rows[slot] = mask
            pm[p] = mask | (1 << slot)
            vc[slot_eid[slot]] = tuple(clock)
            ordered += mask.bit_count()
            words += (mask.bit_length() >> 6) + 1
        self._ordered_pairs += ordered
        self._m_append_words.inc(words)

    def _ensure_np_capacity(self) -> None:
        import numpy as np

        need_rows = self._n_slots
        need_w = max(1, (self._n_slots + 63) >> 6)
        if self._mat is None:
            self._mat = np.zeros(
                (max(256, need_rows), max(4, need_w)), dtype=np.uint64
            )
            self._pm = np.zeros(
                (self._n, max(4, need_w)), dtype=np.uint64
            )
            self._slot_top = np.full(
                self._mat.shape[0], -1, dtype=np.int64
            )
            self._pm_top = np.full(self._n, -1, dtype=np.int64)
            return
        cap_r, cap_w = self._mat.shape
        if need_rows <= cap_r and need_w <= cap_w:
            return
        new_r = max(cap_r * 2, need_rows)
        new_w = max(cap_w * 2, need_w) if need_w > cap_w else cap_w
        mat = np.zeros((new_r, new_w), dtype=np.uint64)
        mat[:cap_r, :cap_w] = self._mat
        self._mat = mat
        pm = np.zeros((self._n, new_w), dtype=np.uint64)
        pm[:, :cap_w] = self._pm
        self._pm = pm
        if new_r > cap_r:
            st = np.full(new_r, -1, dtype=np.int64)
            st[:cap_r] = self._slot_top
            self._slot_top = st

    def _flush_np(self) -> None:
        import numpy as np

        self._flush_np_arrays(
            np.array(self._buf_slot, dtype=np.int64),
            np.array(self._buf_send, dtype=np.int64),
            np.array(self._buf_proc, dtype=np.int64),
        )

    def _flush_np_arrays(
        self, slots, sends, procs, order=None, send_bufpos=None
    ) -> None:
        """Vectorized flush — the chunked twin of
        :func:`~repro.core.npkernel.bulk_past_matrix`'s anchor machinery.

        *slots* / *sends* / *procs* are equal-length int64 arrays in append
        order (*sends* holds the matching send's slot, ``-1`` for
        non-receives).  Only receives merge information across processes,
        so within the flushed batch every row decomposes as::

            row(t) = A(anchor(t)) | pm0[proc(t)] | own buffered bits < t

        where ``anchor(t)`` is the latest in-batch receive at the same
        process before *t* and ``pm0`` is the pre-flush process mask (which
        already covers everything flushed earlier).  Each anchor depends on
        at most two earlier anchors — its process predecessor and the last
        receive before its send — and append order is already a topological
        order, so the chain is two word-parallel ORs per receive.  Own
        prefixes within the batch are contiguous slot intervals except at
        chunk boundaries; they land in one
        :func:`~repro.core.npkernel.scatter_or_intervals` call each for the
        anchors and the final rows (chunk allocation is word-aligned, so
        interval pieces never share a word — the scatter's uniqueness
        requirement).  Net cost: O(receives) row ORs plus a handful of
        whole-batch array ops — no per-event Python.  Vector clocks are
        *not* maintained here; :meth:`vector_clock` computes them lazily by
        masked popcounts over the word-aligned per-process chunks.
        """
        import numpy as np

        from repro.core.npkernel import U64, scatter_or_intervals

        self._ensure_np_capacity()
        mat = self._mat
        pm = self._pm
        B = len(slots)
        if B == 0:
            return
        W = mat.shape[1]
        i8 = np.int64

        recv_mask = sends >= 0
        #: 1-based anchor id at each receive position (cumsum counts self)
        koft = np.cumsum(recv_mask)
        R = int(koft[-1])

        # group by process, append order preserved inside each group
        # (sync_store derives the grouping from the seq column and passes
        # it in; the list-buffer path sorts here)
        if order is None:
            order = np.argsort(procs, kind="stable")
        po = procs[order]
        so = slots[order]  # increasing within each group
        gstart = np.empty(B, dtype=bool)
        gstart[0] = True
        np.not_equal(po[1:], po[:-1], out=gstart[1:])

        # aid[t]: anchor id of the latest in-batch receive at procs[t]
        # strictly before t (0 = none).  Per-group running max of the
        # one-shifted anchor ids; the (R+1)-offset trick resets the
        # accumulate at group starts without a Python loop.
        kv = np.where(recv_mask[order], koft[order], 0)
        shifted = np.empty(B, dtype=i8)
        shifted[0] = 0
        shifted[1:] = kv[:-1]
        shifted[gstart] = 0
        big = (np.cumsum(gstart) - 1) * (R + 1)
        aid = np.empty(B, dtype=i8)
        aid[order] = np.maximum.accumulate(shifted + big) - big
        # prev[t]: slot of the previous same-process batch event (-1 at
        # group starts) — the top bit each event's own-prefix scatter can
        # contribute, tracked so append-words accounting never has to
        # re-scan the row matrix
        prev_sorted = np.empty(B, dtype=i8)
        prev_sorted[0] = -1
        prev_sorted[1:] = so[:-1]
        prev_sorted[gstart] = -1
        prev = np.empty(B, dtype=i8)
        prev[order] = prev_sorted
        slot_top = self._slot_top
        pm_top = self._pm_top
        # the anchor whose row IS row(t): itself for receives, aid otherwise
        gid = np.where(recv_mask, koft, aid)

        # chunk-contiguous pieces of each process's buffered slots: piece
        # starts where the group starts or the slot sequence jumps (always
        # a chunk = word-aligned boundary, so pieces never share a word)
        brk = gstart.copy()
        np.logical_or(brk[1:], so[1:] != so[:-1] + 1, out=brk[1:])
        pstart = np.flatnonzero(brk)
        PLO = so[pstart]
        pend = np.concatenate((pstart[1:] - 1, [B - 1]))
        PHI = so[pend] + 1
        gpid_sorted = np.cumsum(brk) - 1
        GPID = np.empty(B, dtype=i8)
        GPID[order] = gpid_sorted
        # first piece id of each process present in the batch
        POFF = np.zeros(self._n, dtype=i8)
        gs_pos = np.flatnonzero(gstart)
        POFF[po[gs_pos]] = gpid_sorted[gs_pos]
        LPID = GPID - POFF[procs]  # local piece index per event

        def prefix_triples(pos, targets, rows_l, lo_l, hi_l):
            """Triples covering each event's own buffered prefix.

            For buffer positions *pos* (events of any process), append
            intervals so that row ``targets[x]`` gains the bits of all
            same-process batch events strictly before ``pos[x]``: the
            partial piece ``[piece_lo, slot)`` plus every earlier full
            piece of that process.
            """
            rows_l.append(targets)
            lo_l.append(PLO[GPID[pos]])
            hi_l.append(slots[pos])
            reps = LPID[pos]
            tot = int(reps.sum())
            if tot:
                starts_c = np.cumsum(reps) - reps
                jj = np.arange(tot, dtype=i8) - np.repeat(starts_c, reps)
                jj += np.repeat(POFF[procs[pos]], reps)
                rows_l.append(np.repeat(targets, reps))
                lo_l.append(PLO[jj])
                hi_l.append(PHI[jj])

        if R:
            pos_r = np.flatnonzero(recv_mask)
            rprocs = procs[pos_r]
            rslots = sends[pos_r]  # the send slot of each receive
            ar1 = koft[pos_r]  # == arange(1, R+1)
            # which sends are in this batch (vs already in the matrix)
            if send_bufpos is None:
                sort_idx = np.argsort(slots)
                ss = slots[sort_idx]
                ppos_c = np.minimum(np.searchsorted(ss, rslots), B - 1)
                inbuf = ss[ppos_c] == rslots
                send_pos = sort_idx[ppos_c]  # valid where inbuf
            else:
                sbp = send_bufpos[pos_r]
                inbuf = sbp >= 0
                send_pos = np.where(inbuf, sbp, 0)  # valid where inbuf

            anchors = np.zeros((R + 1, W), dtype=np.uint64)
            # fixed seeds: receiver pm0, send row (pre-batch) or sender pm0
            # (in-batch; its prefix and chain follow below), and the send bit
            anchors[ar1] |= pm[rprocs]
            pre = ~inbuf
            if pre.any():
                anchors[ar1[pre]] |= mat[rslots[pre]]
            if inbuf.any():
                anchors[ar1[inbuf]] |= pm[procs[send_pos[inbuf]]]
            anchors[ar1, rslots >> 6] |= U64(1) << (
                rslots & 63
            ).astype(np.uint64)
            # top-set-bit of each anchor's seed: receiver pm0 top, own
            # in-batch prefix, the send bit, and the send row's top (or,
            # in-batch, the sender's pm0 top and prefix — for same-process
            # sends those never exceed the receiver's own terms)
            seedtop = np.maximum(pm_top[rprocs], rslots)
            np.maximum(seedtop, prev[pos_r], out=seedtop)
            np.maximum(
                seedtop, np.where(pre, slot_top[rslots], -1), out=seedtop
            )
            np.maximum(
                seedtop,
                np.where(
                    inbuf,
                    np.maximum(pm_top[procs[send_pos]], prev[send_pos]),
                    -1,
                ),
                out=seedtop,
            )
            atopl = [-1] + seedtop.tolist()
            a_rows: List = []
            a_lo: List = []
            a_hi: List = []
            prefix_triples(pos_r, ar1, a_rows, a_lo, a_hi)
            # same-process sends need no prefix triples: the receiver's
            # own prefix already covers them (and repeating the words
            # would break the scatter's per-row uniqueness requirement)
            cross = inbuf & (procs[send_pos] != rprocs)
            if cross.any():
                sb = send_pos[cross]
                prefix_triples(sb, ar1[cross], a_rows, a_lo, a_hi)
            scatter_or_intervals(
                anchors,
                np.concatenate(a_rows),
                np.concatenate(a_lo),
                np.concatenate(a_hi),
            )
            # chain: append order is topological (paid/said precede k).
            # The chain is inherently sequential, so run it on Python big
            # ints — one |-op per link beats two numpy-dispatch row ORs
            # by ~4x at these row widths.  Bytes are identical either way
            # (row.tobytes() == int.to_bytes is the kernel's core pin).
            paid = aid[pos_r].tolist()
            said = np.where(inbuf, aid[send_pos], 0).tolist()
            rowb = W * 8
            mv = memoryview(anchors.tobytes())
            ints = [
                int.from_bytes(mv[k * rowb : (k + 1) * rowb], "little")
                for k in range(R + 1)
            ]
            for k in range(R):
                pk = paid[k]
                sk = said[k]
                acc = ints[k + 1]
                tv = atopl[k + 1]
                if pk:
                    acc |= ints[pk]
                    if atopl[pk] > tv:
                        tv = atopl[pk]
                if sk and sk != pk:
                    acc |= ints[sk]
                    if atopl[sk] > tv:
                        tv = atopl[sk]
                ints[k + 1] = acc
                atopl[k + 1] = tv
            anchors = np.frombuffer(
                b"".join(v.to_bytes(rowb, "little") for v in ints),
                dtype=np.uint64,
            ).reshape(R + 1, W)
        # assemble final rows in a compact (B, W) buffer in *buffer* order
        # — then write mat once.  Metrics read the buffer too, so no row
        # is gathered back out of mat.  ``anchors[gid] | pm[proc]`` has
        # only O(R + processes) distinct values (within a process the
        # anchor changes only at receives), so build that small combo
        # table first and fan it out with a single gather into a reused
        # scratch buffer instead of two full-width gathers plus an OR.
        gido = gid[order]
        change = gstart.copy()
        np.logical_or(change[1:], gido[1:] != gido[:-1], out=change[1:])
        uc = np.flatnonzero(change)
        combo = np.empty(B, dtype=i8)
        combo[order] = np.cumsum(change) - 1
        if R:
            ctab = anchors[gido[uc]]
            ctab |= pm[po[uc]]
            atop = np.array(atopl, dtype=i8)
            ctop = np.maximum(atop[gido[uc]], pm_top[po[uc]])
        else:
            ctab = pm[po[uc]]
            ctop = pm_top[po[uc]]
        rows = _flush_scratch(B, W)
        # combo is in-range by construction; mode="clip" skips the
        # bounds-checked slow path np.take uses with out= and "raise"
        np.take(ctab, combo, axis=0, out=rows, mode="clip")
        m_rows: List = []
        m_lo: List = []
        m_hi: List = []
        prefix_triples(
            np.arange(B, dtype=i8), np.arange(B, dtype=i8),
            m_rows, m_lo, m_hi,
        )
        scatter_or_intervals(
            rows,
            np.concatenate(m_rows),
            np.concatenate(m_lo),
            np.concatenate(m_hi),
        )
        mat[slots] = rows
        # process masks: the last batch event's row plus its own bit
        last_pos = np.empty(B, dtype=bool)
        last_pos[:-1] = gstart[1:]
        last_pos[-1] = True
        lp = np.flatnonzero(last_pos)
        lprocs = po[lp]
        lslots = so[lp]
        pm[lprocs] = rows[order[lp]]
        pm[lprocs, lslots >> 6] |= U64(1) << (lslots & 63).astype(np.uint64)

        self._ordered_pairs += int(
            np.bitwise_count(rows).sum(dtype=np.int64)
        )
        # words per append match _append's ``(bit_length >> 6) + 1``, but
        # from the structurally-tracked top bit — every row's highest set
        # bit is the max of its combo row's top and its own-prefix top —
        # so no full-width re-scan of the batch is needed
        top = np.maximum(ctop[combo], prev)
        slot_top[slots] = top
        pm_top[lprocs] = np.maximum(top[order[lp]], lslots)
        self._m_append_words.inc(int(((top + 1) >> 6).sum()) + B)

    def _row_int(self, slot: int) -> int:
        """The strict-past mask of *slot* as a Python int (either engine)."""
        if self._use_np:
            return int.from_bytes(self._mat[slot].tobytes(), "little")
        return self._rows[slot]

    # ------------------------------------------------------------------
    # raw point queries (uncached: each is a bit test)
    # ------------------------------------------------------------------
    def happened_before(self, e: EventId, f: EventId) -> bool:
        """Whether ``e -> f``.  Final the moment both events are appended."""
        if self._pending():
            self.flush()
        fs = self._slot_of(f)
        es = self._slot_of(e)
        if self._use_np:
            return bool(int(self._mat[fs, es >> 6]) >> (es & 63) & 1)
        return bool(self._rows[fs] >> es & 1)

    def leq(self, e: EventId, f: EventId) -> bool:
        """Whether ``e == f`` or ``e -> f``."""
        return e == f or self.happened_before(e, f)

    def vector_clock(self, eid: EventId) -> Tuple[int, ...]:
        """The ground-truth full-length vector clock of *eid*.

        Per-op and pure-batched modes maintain clocks eagerly.  The
        numpy-batched engine computes them lazily here — a masked popcount
        of the event's row over each process's (word-aligned) chunk words —
        and memoizes the result; answers are identical either way.
        """
        vc = self._vc.get(eid)
        if vc is not None:
            return vc
        if self._batch and self._pending():
            self.flush()
            vc = self._vc.get(eid)
            if vc is not None:
                return vc
        if not (self._batch and self._use_np):
            return self._vc[eid]  # raises KeyError for unknown events
        slot = self._slot_of(eid)
        import numpy as np

        row = self._mat[slot]
        clock = [0] * self._n
        for p in range(self._n):
            words = self._proc_words[p]
            if words:
                clock[p] = int(
                    np.bitwise_count(
                        row[np.asarray(words, dtype=np.int64)]
                    ).sum(dtype=np.int64)
                )
        clock[eid.proc] += 1
        vc = tuple(clock)
        self._vc[eid] = vc
        return vc

    # ------------------------------------------------------------------
    # memoized batch-query layer
    # ------------------------------------------------------------------
    def _cached(self, key: tuple, compute):
        if self._cache_watermark != self._watermark:
            # every append can extend causal pasts — drop the whole cache
            self._cache.clear()
            self._cache_watermark = self._watermark
        hit = self._cache.get(key, _MISS)
        if hit is not _MISS:
            self._cache.move_to_end(key)
            self._m_cache_hit.inc()
            return hit
        self._m_cache_miss.inc()
        value = compute()
        self._cache[key] = value
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return value

    def precedes(self, e: EventId, f: EventId) -> bool:
        """Memoized ``e -> f`` (the detector polling pattern hits cache)."""
        return self._cached(
            ("hb", e, f), lambda: self.happened_before(e, f)
        )

    def concurrent(self, e: EventId, f: EventId) -> bool:
        """Whether *e* and *f* are distinct and causally unordered."""
        key = ("conc", e, f) if e <= f else ("conc", f, e)
        return self._cached(
            key,
            lambda: e != f
            and not self.happened_before(e, f)
            and not self.happened_before(f, e),
        )

    def causal_past(self, f: EventId) -> Set[EventId]:
        """All appended events ``e`` with ``e -> f``."""
        return set(self._cached(("past", f), lambda: self._decode_past(f)))

    def _decode_past(self, f: EventId) -> Tuple[EventId, ...]:
        if self._pending():
            self.flush()
        return tuple(self._events_from_mask(self._row_int(self._slot_of(f))))

    def causal_frontier(self, events: Iterable[EventId]) -> List[EventId]:
        """Maximal events of the downward closure of *events*.

        The smallest causally-closed set containing *events* is a union of
        causal pasts; its maximal elements — the frontier a consistent
        snapshot would cut along — are the members not in any member's
        strict past (one row-OR per seed event, word-parallel).
        """
        key = ("frontier", tuple(sorted(events)))
        return list(self._cached(key, lambda: self._compute_frontier(key[1])))

    def _compute_frontier(
        self, events: Tuple[EventId, ...]
    ) -> Tuple[EventId, ...]:
        if self._pending():
            self.flush()
        closure = 0
        for f in events:
            slot = self._slot_of(f)
            closure |= self._row_int(slot) | (1 << slot)
        dominated = 0
        mask = closure
        while mask:
            lsb = mask & -mask
            dominated |= self._row_int(lsb.bit_length() - 1)
            mask ^= lsb
        return tuple(self._events_from_mask(closure & ~dominated))

    def relation_counts(self) -> Tuple[int, int]:
        """``(ordered_pairs, concurrent_unordered_pairs)`` so far.

        The ordered-pair popcount is maintained at append time, so this is
        O(1) arithmetic — no row scan.
        """
        if self._pending():
            self.flush()
        m = self._watermark
        return self._ordered_pairs, m * (m - 1) // 2 - self._ordered_pairs

    def _events_from_mask(self, mask: int) -> List[EventId]:
        """Decode a slot mask, ordered by (process, index) for determinism."""
        out: List[EventId] = []
        while mask:
            lsb = mask & -mask
            out.append(self._eid_of_slot(lsb.bit_length() - 1))
            mask ^= lsb
        out.sort()
        return out

    def cache_info(self) -> Dict[str, int]:
        """Current cache occupancy (hits/misses live on the registry)."""
        return {
            "entries": len(self._cache),
            "capacity": self._cache_size,
            "watermark": self._cache_watermark,
        }

    # ------------------------------------------------------------------
    # freeze: hand over to the batch oracle, byte-identically
    # ------------------------------------------------------------------
    def freeze(
        self, execution: Execution, backend: Optional[str] = None
    ) -> HappenedBeforeOracle:
        """A batch oracle over *execution*, reusing the incremental rows.

        *execution* must be the completed execution whose events were
        streamed in (same per-process counts).  On the pure backend the
        chunked rows are permuted block-wise into the batch oracle's
        process-major dense indexing — O(chunks) big-int shifts per row,
        never a recompute.  When *backend* (or the process-wide
        preference, see :mod:`repro.core.backend`) resolves to ``numpy``,
        the bulk array kernel rebuilds the matrix outright — faster than
        remapping rows through Python ints — and the incrementally
        maintained vector clocks are handed over as-is.  Either way the
        result is indistinguishable from ``HappenedBeforeOracle(execution)``:
        identical ``past_masks()``, ``event_order``, vector clocks, and
        query answers.
        """
        if execution.n_processes != self._n:
            raise ValueError(
                f"execution has {execution.n_processes} processes, "
                f"oracle was built for {self._n}"
            )
        self.flush()  # also drains a bound store, so counts are current
        for p in range(self._n):
            have = self._counts[p]
            want = len(execution.events_at(p))
            if have != want:
                raise ValueError(
                    f"process {p}: oracle saw {have} events, "
                    f"execution has {want}"
                )
        from repro.core.backend import resolve_backend

        if resolve_backend(self._watermark, backend) == "numpy":
            oracle = HappenedBeforeOracle(execution, backend="numpy")
            if not (self._batch and self._use_np):
                # hand over the incrementally maintained clocks; they are
                # byte-identical to a fresh computation (pinned by the
                # equivalence tests), so the matrix path never recomputes
                # them.  The numpy-batched engine keeps clocks lazily and
                # its _vc may be partial — let the oracle compute its own.
                oracle._vc = dict(self._vc)
            return oracle
        if self._batch and self._use_np:
            # rows live as uint64 words; a block permutation through
            # Python ints would cost as much as a rebuild — rebuild on
            # the (reference) pure kernel instead.  Rare combination:
            # a numpy-flushed stream frozen onto an explicitly-pure oracle.
            return HappenedBeforeOracle(execution, backend="pure")
        # process-major target offsets (the batch oracle's _proc_base)
        bases: List[int] = []
        offset = 0
        for p in range(self._n):
            bases.append(offset)
            offset += self._counts[p]
        # permutation segments: each allocated chunk is one contiguous run
        segments: List[Tuple[int, int, int]] = []  # (src_base, sel_mask, dst)
        for p in range(self._n):
            for c, src in enumerate(self._chunks[p]):
                length = min(self._chunk, self._counts[p] - c * self._chunk)
                segments.append(
                    (src, (1 << length) - 1, bases[p] + c * self._chunk)
                )

        def remap(row: int) -> int:
            out = 0
            for src, sel, dst in segments:
                bits = (row >> src) & sel
                if bits:
                    out |= bits << dst
            return out

        rows = self._rows
        chunk = self._chunk
        past: List[int] = []
        for p in range(self._n):
            cbases = self._chunks[p]
            for i in range(self._counts[p]):
                past.append(remap(rows[cbases[i // chunk] + i % chunk]))
        return HappenedBeforeOracle.from_parts(execution, past, self._vc)


def as_batch_oracle(
    oracle: AnyOracle, execution: Execution
) -> HappenedBeforeOracle:
    """Coerce either oracle flavor to the batch one.

    Batch oracles pass through; incremental oracles are frozen against
    *execution*.  This is what lets validation and application entry points
    accept whichever flavor the caller already has.
    """
    if isinstance(oracle, IncrementalHBOracle):
        return oracle.freeze(execution)
    return oracle


def incremental_from_execution(
    execution: Execution,
    *,
    chunk: int = 64,
    cache_size: int = 1024,
    registry: Optional[MetricsRegistry] = None,
    batch: bool = False,
    backend: Optional[str] = None,
) -> IncrementalHBOracle:
    """Convenience: stream a completed execution into a fresh oracle."""
    oracle = IncrementalHBOracle(
        execution.n_processes,
        chunk=chunk,
        cache_size=cache_size,
        registry=registry,
        batch=batch,
        backend=backend,
    )
    return oracle.ingest(execution)

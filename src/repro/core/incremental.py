"""Incremental happened-before oracle: streaming O(Δ) appends.

The batch :class:`~repro.core.happened_before.HappenedBeforeOracle` is
constructed over a *completed* execution, so every online consumer — the
Section-6 application detectors, the simulator's invariant checks — used to
rebuild the full O(|E|²)-bit causal-past matrix from scratch whenever it
needed an answer mid-run.  :class:`IncrementalHBOracle` maintains the same
packed-int causal-past rows *as events are appended*:

- ``append_local`` / ``append_send`` extend one row by copying the process's
  running mask (amortized O(row-words) big-int work);
- ``append_receive`` additionally ORs in the matching send's row — the same
  word-parallel recurrence the batch kernel uses, applied once per event
  instead of once per rebuild;
- row storage grows in fixed-size *chunks* of bit-indices handed to each
  process on demand, so no append ever re-indexes or rebuilds existing rows.

Because causal pasts are append-monotone (appending an event never changes
the row of an existing event), every answer the oracle gives online is
*final* — exactly why conflict/predicate detection can act on it while the
execution is still running.

On top of the rows sits a memoized batch-query layer: ``precedes`` /
``concurrent`` / ``causal_past`` / ``causal_frontier`` / ``relation_counts``
results are cached in a small LRU that is invalidated wholesale whenever the
append watermark moves, so repeated queries between appends (the detector
polling pattern) cost one dict hit.

``freeze(execution)`` converts the chunked rows to the batch oracle's
process-major dense indexing (a block-wise bit permutation, one pass) and
returns a genuine :class:`HappenedBeforeOracle` whose rows, vector clocks,
and query answers are byte-identical to one built from scratch over the
completed execution — pinned by ``tests/core/test_incremental_oracle.py``.

Observability (:mod:`repro.obs`): ``oracle.appends``, ``oracle.append_words``
(big-int words touched by appends), and ``oracle.query_cache_hit`` /
``oracle.query_cache_miss`` counters on the registry active at construction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.core.events import Event, EventId, ProcessId
from repro.core.execution import Execution
from repro.core.happened_before import HappenedBeforeOracle
from repro.obs.metrics import MetricsRegistry, active_registry

#: sentinel distinguishing "cached None" from "absent"
_MISS = object()

#: either oracle flavor — helpers below coerce to the batch one when needed
AnyOracle = Union[HappenedBeforeOracle, "IncrementalHBOracle"]


class IncrementalHBOracle:
    """Happened-before oracle maintained event-by-event while a run streams.

    Parameters
    ----------
    n_processes:
        Number of processes (fixed up front, like every clock algorithm).
    chunk:
        Bit-indices handed to a process per allocation.  Larger chunks mean
        fewer, cheaper ``freeze`` permutation segments; smaller chunks waste
        fewer trailing bits on short processes.  The default (64) aligns
        with CPython's 2³⁰-digit limbs well enough in practice.
    cache_size:
        Maximum entries in the memoized query LRU.
    registry:
        Metrics registry for the ``oracle.*`` instruments; defaults to the
        registry active at construction time.
    """

    def __init__(
        self,
        n_processes: int,
        *,
        chunk: int = 64,
        cache_size: int = 1024,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if n_processes < 1:
            raise ValueError("need at least one process")
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self._n = n_processes
        self._chunk = chunk
        #: strict causal-past bitmask per slot (chunk-granular allocation)
        self._rows: List[int] = []
        #: slot -> owning EventId (None for not-yet-used slots of a chunk)
        self._slot_eid: List[Optional[EventId]] = []
        #: per process: base slot of each chunk allocated to it, in order
        self._chunks: List[List[int]] = [[] for _ in range(n_processes)]
        #: events appended so far per process
        self._counts: List[int] = [0] * n_processes
        #: running mask per process: strict past of its *next* event
        self._proc_mask: List[int] = [0] * n_processes
        self._proc_clock: List[List[int]] = [
            [0] * n_processes for _ in range(n_processes)
        ]
        self._vc: Dict[EventId, Tuple[int, ...]] = {}
        #: running popcount of all rows — makes relation_counts O(1)
        self._ordered_pairs = 0
        self._watermark = 0
        self._cache: "OrderedDict[tuple, object]" = OrderedDict()
        self._cache_size = cache_size
        self._cache_watermark = 0
        reg = registry if registry is not None else active_registry()
        self._m_appends = reg.counter("oracle.appends")
        self._m_append_words = reg.counter("oracle.append_words")
        self._m_cache_hit = reg.counter("oracle.query_cache_hit")
        self._m_cache_miss = reg.counter("oracle.query_cache_miss")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_processes(self) -> int:
        return self._n

    @property
    def n_events(self) -> int:
        """Events appended so far."""
        return self._watermark

    @property
    def watermark(self) -> int:
        """Monotone append counter; bumping it invalidates the query cache."""
        return self._watermark

    def event_count(self, proc: ProcessId) -> int:
        """Events appended at *proc* so far."""
        return self._counts[proc]

    def __contains__(self, eid: EventId) -> bool:
        return 0 <= eid.proc < self._n and eid.index <= self._counts[eid.proc]

    def _slot_of(self, eid: EventId) -> int:
        i = eid.index - 1
        if not 0 <= eid.proc < self._n or not 0 <= i < self._counts[eid.proc]:
            raise KeyError(f"{eid} has not been appended")
        return self._chunks[eid.proc][i // self._chunk] + i % self._chunk

    # ------------------------------------------------------------------
    # appends — the O(Δ) streaming surface
    # ------------------------------------------------------------------
    def _append(
        self,
        eid: EventId,
        extra_mask: int = 0,
        send_vc: Optional[Tuple[int, ...]] = None,
    ) -> int:
        p = eid.proc
        if not 0 <= p < self._n:
            raise ValueError(f"process {p} out of range [0, {self._n})")
        if eid.index != self._counts[p] + 1:
            raise ValueError(
                f"out-of-order append: expected index {self._counts[p] + 1} "
                f"at p{p}, got {eid.index}"
            )
        i = self._counts[p]
        if i % self._chunk == 0:
            # hand this process a fresh chunk at the top of the slot space
            base = len(self._rows)
            self._chunks[p].append(base)
            self._rows.extend([0] * self._chunk)
            self._slot_eid.extend([None] * self._chunk)
        slot = self._chunks[p][i // self._chunk] + i % self._chunk
        mask = self._proc_mask[p] | extra_mask
        clock = self._proc_clock[p]
        if send_vc is not None:
            for k in range(self._n):
                if send_vc[k] > clock[k]:
                    clock[k] = send_vc[k]
        clock[p] += 1
        self._rows[slot] = mask
        self._slot_eid[slot] = eid
        self._proc_mask[p] = mask | (1 << slot)
        self._counts[p] = eid.index
        self._vc[eid] = tuple(clock)
        self._ordered_pairs += mask.bit_count()
        self._watermark += 1
        self._m_appends.inc()
        self._m_append_words.inc((mask.bit_length() >> 6) + 1)
        return slot

    def append_local(self, eid: EventId) -> None:
        """Record a local event.  Must be the next index at its process."""
        self._append(eid)

    def append_send(self, eid: EventId) -> None:
        """Record a send event (causally identical to a local step)."""
        self._append(eid)

    def append_receive(self, eid: EventId, send: EventId) -> None:
        """Record the receive matching the already-appended *send*."""
        sslot = self._slot_of(send)
        extra = self._rows[sslot] | (1 << sslot)
        self._append(eid, extra_mask=extra, send_vc=self._vc[send])

    def append_event(
        self, ev: Event, send: Optional[EventId] = None
    ) -> None:
        """Dispatch on the event kind; receives require the matching *send*."""
        if ev.is_receive:
            if send is None:
                raise ValueError(f"receive {ev.eid} needs its send event id")
            self.append_receive(ev.eid, send)
        else:
            self._append(ev.eid)

    def ingest(self, execution: Execution) -> "IncrementalHBOracle":
        """Stream a completed execution through the append path.

        Events are fed in ``delivery_order()`` (any causally consistent
        order yields identical rows).  Returns ``self`` for chaining.
        """
        for ev in execution.delivery_order():
            if ev.is_receive:
                self.append_receive(ev.eid, execution.send_of(ev).eid)
            else:
                self._append(ev.eid)
        return self

    # ------------------------------------------------------------------
    # raw point queries (uncached: each is a bit test)
    # ------------------------------------------------------------------
    def happened_before(self, e: EventId, f: EventId) -> bool:
        """Whether ``e -> f``.  Final the moment both events are appended."""
        return bool(self._rows[self._slot_of(f)] >> self._slot_of(e) & 1)

    def leq(self, e: EventId, f: EventId) -> bool:
        """Whether ``e == f`` or ``e -> f``."""
        return e == f or self.happened_before(e, f)

    def vector_clock(self, eid: EventId) -> Tuple[int, ...]:
        """The ground-truth full-length vector clock of *eid*."""
        return self._vc[eid]

    # ------------------------------------------------------------------
    # memoized batch-query layer
    # ------------------------------------------------------------------
    def _cached(self, key: tuple, compute):
        if self._cache_watermark != self._watermark:
            # every append can extend causal pasts — drop the whole cache
            self._cache.clear()
            self._cache_watermark = self._watermark
        hit = self._cache.get(key, _MISS)
        if hit is not _MISS:
            self._cache.move_to_end(key)
            self._m_cache_hit.inc()
            return hit
        self._m_cache_miss.inc()
        value = compute()
        self._cache[key] = value
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return value

    def precedes(self, e: EventId, f: EventId) -> bool:
        """Memoized ``e -> f`` (the detector polling pattern hits cache)."""
        return self._cached(
            ("hb", e, f), lambda: self.happened_before(e, f)
        )

    def concurrent(self, e: EventId, f: EventId) -> bool:
        """Whether *e* and *f* are distinct and causally unordered."""
        key = ("conc", e, f) if e <= f else ("conc", f, e)
        return self._cached(
            key,
            lambda: e != f
            and not self.happened_before(e, f)
            and not self.happened_before(f, e),
        )

    def causal_past(self, f: EventId) -> Set[EventId]:
        """All appended events ``e`` with ``e -> f``."""
        return set(self._cached(("past", f), lambda: self._decode_past(f)))

    def _decode_past(self, f: EventId) -> Tuple[EventId, ...]:
        return tuple(self._events_from_mask(self._rows[self._slot_of(f)]))

    def causal_frontier(self, events: Iterable[EventId]) -> List[EventId]:
        """Maximal events of the downward closure of *events*.

        The smallest causally-closed set containing *events* is a union of
        causal pasts; its maximal elements — the frontier a consistent
        snapshot would cut along — are the members not in any member's
        strict past (one row-OR per seed event, word-parallel).
        """
        key = ("frontier", tuple(sorted(events)))
        return list(self._cached(key, lambda: self._compute_frontier(key[1])))

    def _compute_frontier(
        self, events: Tuple[EventId, ...]
    ) -> Tuple[EventId, ...]:
        closure = 0
        for f in events:
            slot = self._slot_of(f)
            closure |= self._rows[slot] | (1 << slot)
        dominated = 0
        mask = closure
        while mask:
            lsb = mask & -mask
            dominated |= self._rows[lsb.bit_length() - 1]
            mask ^= lsb
        return tuple(self._events_from_mask(closure & ~dominated))

    def relation_counts(self) -> Tuple[int, int]:
        """``(ordered_pairs, concurrent_unordered_pairs)`` so far.

        The ordered-pair popcount is maintained at append time, so this is
        O(1) arithmetic — no row scan.
        """
        m = self._watermark
        return self._ordered_pairs, m * (m - 1) // 2 - self._ordered_pairs

    def _events_from_mask(self, mask: int) -> List[EventId]:
        """Decode a slot mask, ordered by (process, index) for determinism."""
        out: List[EventId] = []
        slot_eid = self._slot_eid
        while mask:
            lsb = mask & -mask
            eid = slot_eid[lsb.bit_length() - 1]
            assert eid is not None  # set bits always denote appended events
            out.append(eid)
            mask ^= lsb
        out.sort()
        return out

    def cache_info(self) -> Dict[str, int]:
        """Current cache occupancy (hits/misses live on the registry)."""
        return {
            "entries": len(self._cache),
            "capacity": self._cache_size,
            "watermark": self._cache_watermark,
        }

    # ------------------------------------------------------------------
    # freeze: hand over to the batch oracle, byte-identically
    # ------------------------------------------------------------------
    def freeze(
        self, execution: Execution, backend: Optional[str] = None
    ) -> HappenedBeforeOracle:
        """A batch oracle over *execution*, reusing the incremental rows.

        *execution* must be the completed execution whose events were
        streamed in (same per-process counts).  On the pure backend the
        chunked rows are permuted block-wise into the batch oracle's
        process-major dense indexing — O(chunks) big-int shifts per row,
        never a recompute.  When *backend* (or the process-wide
        preference, see :mod:`repro.core.backend`) resolves to ``numpy``,
        the bulk array kernel rebuilds the matrix outright — faster than
        remapping rows through Python ints — and the incrementally
        maintained vector clocks are handed over as-is.  Either way the
        result is indistinguishable from ``HappenedBeforeOracle(execution)``:
        identical ``past_masks()``, ``event_order``, vector clocks, and
        query answers.
        """
        if execution.n_processes != self._n:
            raise ValueError(
                f"execution has {execution.n_processes} processes, "
                f"oracle was built for {self._n}"
            )
        for p in range(self._n):
            have = self._counts[p]
            want = len(execution.events_at(p))
            if have != want:
                raise ValueError(
                    f"process {p}: oracle saw {have} events, "
                    f"execution has {want}"
                )
        from repro.core.backend import resolve_backend

        if resolve_backend(self._watermark, backend) == "numpy":
            oracle = HappenedBeforeOracle(execution, backend="numpy")
            # hand over the incrementally maintained clocks; they are
            # byte-identical to a fresh computation (pinned by the
            # equivalence tests), so the matrix path never recomputes them
            oracle._vc = dict(self._vc)
            return oracle
        # process-major target offsets (the batch oracle's _proc_base)
        bases: List[int] = []
        offset = 0
        for p in range(self._n):
            bases.append(offset)
            offset += self._counts[p]
        # permutation segments: each allocated chunk is one contiguous run
        segments: List[Tuple[int, int, int]] = []  # (src_base, sel_mask, dst)
        for p in range(self._n):
            for c, src in enumerate(self._chunks[p]):
                length = min(self._chunk, self._counts[p] - c * self._chunk)
                segments.append(
                    (src, (1 << length) - 1, bases[p] + c * self._chunk)
                )

        def remap(row: int) -> int:
            out = 0
            for src, sel, dst in segments:
                bits = (row >> src) & sel
                if bits:
                    out |= bits << dst
            return out

        rows = self._rows
        chunk = self._chunk
        past: List[int] = []
        for p in range(self._n):
            cbases = self._chunks[p]
            for i in range(self._counts[p]):
                past.append(remap(rows[cbases[i // chunk] + i % chunk]))
        return HappenedBeforeOracle.from_parts(execution, past, self._vc)


def as_batch_oracle(
    oracle: AnyOracle, execution: Execution
) -> HappenedBeforeOracle:
    """Coerce either oracle flavor to the batch one.

    Batch oracles pass through; incremental oracles are frozen against
    *execution*.  This is what lets validation and application entry points
    accept whichever flavor the caller already has.
    """
    if isinstance(oracle, IncrementalHBOracle):
        return oracle.freeze(execution)
    return oracle


def incremental_from_execution(
    execution: Execution,
    *,
    chunk: int = 64,
    cache_size: int = 1024,
    registry: Optional[MetricsRegistry] = None,
) -> IncrementalHBOracle:
    """Convenience: stream a completed execution into a fresh oracle."""
    oracle = IncrementalHBOracle(
        execution.n_processes,
        chunk=chunk,
        cache_size=cache_size,
        registry=registry,
    )
    return oracle.ingest(execution)

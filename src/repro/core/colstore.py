"""Columnar (structure-of-arrays) event storage.

The object model in :mod:`repro.core.events` spends ~200 bytes per event
once the :class:`~repro.core.events.Event`, its
:class:`~repro.core.events.EventId`, and the per-process list slots are
counted — which caps the epidemic-scale populations the ROADMAP targets.
:class:`EventStore` keeps the same information as parallel append-only
columns (``array('b'/'i'/'q'/'d')``), one row per event in *append order*:

- ``proc``  — owning process id (interned: dense ints, stored once);
- ``seq``   — 1-based index at that process (the paper's ``ctr``);
- ``kind``  — 0 local / 1 send / 2 receive;
- ``msg``   — message id, or -1 for local events;
- ``vtime`` — optional occurrence-time column the simulator writes into
  instead of keeping an ``EventId``-keyed dict.

Messages are columnar too (``src`` / ``dst`` / send row / receive row,
-1 while in flight), and a per-process row index gives O(1)
``(proc, index) -> row`` lookups.  Appends are O(1) amortized — the
``array`` module grows geometrically — and every append runs the same
validation as :class:`~repro.core.execution.ExecutionBuilder` (graph
edges, message matching, consecutive indices), raising the same
:class:`~repro.core.execution.ExecutionError`.

The public ``Event`` / ``Message`` API is untouched: objects are
*materialized on demand* (:meth:`EventStore.event`,
:meth:`EventStore.events_at`), and :meth:`EventStore.freeze` returns a
:class:`ColumnarExecution` — a real
:class:`~repro.core.execution.Execution` subclass that defers object
materialization until something actually asks for events, so oracles and
replay code work unchanged while the run itself retains only columns.

No numpy required: columns are stdlib ``array`` objects, so the pure
leg works untouched.  When numpy is available (see
:func:`repro.core.backend.numpy_available`), :meth:`EventStore.column`
exposes zero-copy ``ndarray`` views for vectorized consumers such as
:func:`repro.core.npkernel.bulk_past_matrix`.

Selection between the object builder and this store is the
``REPRO_EVENT_STORE`` seam in :mod:`repro.core.backend`
(:func:`~repro.core.backend.resolve_store`), mirroring the kernel
backend seam; byte-identity of everything downstream is pinned by
``tests/core/test_colstore_parity.py`` and the conformance fuzzer's
``store-differential`` invariant.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.events import (
    Event,
    EventId,
    EventKind,
    Message,
    MessageId,
    ProcessId,
)
from repro.core.execution import Execution, ExecutionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.topology.graph import CommunicationGraph

#: compact kind codes (column values) <-> the public enum
KIND_LOCAL, KIND_SEND, KIND_RECEIVE = 0, 1, 2
_KIND_TO_ENUM = {
    KIND_LOCAL: EventKind.LOCAL,
    KIND_SEND: EventKind.SEND,
    KIND_RECEIVE: EventKind.RECEIVE,
}
_ENUM_TO_KIND = {v: k for k, v in _KIND_TO_ENUM.items()}


class EventStore:
    """Structure-of-arrays storage for one execution's events and messages.

    Parameters
    ----------
    n_processes:
        Number of processes; process ids are the interned ``0..n-1`` range.
    graph:
        Optional topology; sends are validated against its edges, exactly
        like :class:`~repro.core.execution.ExecutionBuilder`.
    track_vtime:
        Allocate the ``vtime`` column (the simulator's occurrence times).
        Off by default so non-simulation users pay nothing for it.
    """

    __slots__ = (
        "_n", "_graph", "_proc", "_seq", "_kind", "_msg", "_vtime",
        "_rows_of", "_msrc", "_mdst", "_msend", "_mrecv",
    )

    def __init__(
        self,
        n_processes: int,
        graph: Optional["CommunicationGraph"] = None,
        *,
        track_vtime: bool = False,
    ) -> None:
        if n_processes < 1:
            raise ExecutionError("need at least one process")
        if graph is not None and graph.n_vertices != n_processes:
            raise ExecutionError(
                f"graph has {graph.n_vertices} vertices but "
                f"{n_processes} processes were requested"
            )
        self._n = n_processes
        self._graph = graph
        # event columns, append order (row id = append rank)
        self._proc = array("i")
        self._seq = array("i")
        self._kind = array("b")
        self._msg = array("i")  # -1 for local events
        self._vtime: Optional[array] = array("d") if track_vtime else None
        # per process: global row of each of its events, in index order
        self._rows_of: List[array] = [array("i") for _ in range(n_processes)]
        # message columns, send order
        self._msrc = array("i")
        self._mdst = array("i")
        self._msend = array("i")  # global row of the send event
        self._mrecv = array("i")  # global row of the receive, -1 in flight

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def n_processes(self) -> int:
        return self._n

    @property
    def graph(self) -> Optional["CommunicationGraph"]:
        return self._graph

    @property
    def n_events(self) -> int:
        return len(self._proc)

    @property
    def n_messages(self) -> int:
        return len(self._msrc)

    def count_at(self, proc: ProcessId) -> int:
        """Events appended at *proc* so far."""
        return len(self._rows_of[proc])

    def counts(self) -> List[int]:
        """Per-process event counts (index 1..counts[p] exist at p)."""
        return [len(rows) for rows in self._rows_of]

    def nbytes(self) -> int:
        """Retained column bytes — the bench's bytes-per-event numerator."""
        cols = [
            self._proc, self._seq, self._kind, self._msg,
            self._msrc, self._mdst, self._msend, self._mrecv,
            *self._rows_of,
        ]
        if self._vtime is not None:
            cols.append(self._vtime)
        return sum(len(c) * c.itemsize for c in cols)

    # ------------------------------------------------------------------
    # appends — O(1) amortized, builder-equivalent validation
    # ------------------------------------------------------------------
    def append_local(self, proc: ProcessId) -> int:
        """Append a local event at *proc*; returns its global row."""
        if not 0 <= proc < self._n:
            raise ExecutionError(f"process {proc} out of range [0, {self._n})")
        row = len(self._proc)
        rows = self._rows_of[proc]
        self._proc.append(proc)
        self._seq.append(len(rows) + 1)
        self._kind.append(KIND_LOCAL)
        self._msg.append(-1)
        if self._vtime is not None:
            self._vtime.append(0.0)
        rows.append(row)
        return row

    def append_send(self, src: ProcessId, dst: ProcessId) -> MessageId:
        """Append a send from *src* to *dst*; returns the new message id."""
        if not 0 <= src < self._n:
            raise ExecutionError(f"process {src} out of range [0, {self._n})")
        if not 0 <= dst < self._n:
            raise ExecutionError(f"destination {dst} out of range [0, {self._n})")
        if src == dst:
            raise ExecutionError("self-messages are not part of the model")
        if self._graph is not None and not self._graph.has_edge(src, dst):
            raise ExecutionError(
                f"no channel between p{src} and p{dst} in the topology"
            )
        row = len(self._proc)
        msg_id = len(self._msrc)
        rows = self._rows_of[src]
        self._proc.append(src)
        self._seq.append(len(rows) + 1)
        self._kind.append(KIND_SEND)
        self._msg.append(msg_id)
        if self._vtime is not None:
            self._vtime.append(0.0)
        rows.append(row)
        self._msrc.append(src)
        self._mdst.append(dst)
        self._msend.append(row)
        self._mrecv.append(-1)
        return msg_id

    def append_receive(self, proc: ProcessId, msg_id: MessageId) -> int:
        """Append the receive of *msg_id* at *proc*; returns its global row."""
        if not 0 <= msg_id < len(self._msrc):
            raise ExecutionError(f"unknown message id {msg_id}")
        if self._mrecv[msg_id] >= 0:
            raise ExecutionError(f"message {msg_id} already delivered")
        if self._mdst[msg_id] != proc:
            raise ExecutionError(
                f"message {msg_id} is addressed to p{self._mdst[msg_id]}, "
                f"not p{proc}"
            )
        row = len(self._proc)
        rows = self._rows_of[proc]
        self._proc.append(proc)
        self._seq.append(len(rows) + 1)
        self._kind.append(KIND_RECEIVE)
        self._msg.append(msg_id)
        if self._vtime is not None:
            self._vtime.append(0.0)
        rows.append(row)
        self._mrecv[msg_id] = row
        return row

    # ------------------------------------------------------------------
    # vtime column (simulator hot path)
    # ------------------------------------------------------------------
    def set_last_vtime(self, t: float) -> None:
        """Record the occurrence time of the most recently appended event."""
        assert self._vtime is not None, "store built without track_vtime"
        self._vtime[-1] = t

    def vtime_at(self, row: int) -> float:
        assert self._vtime is not None, "store built without track_vtime"
        return self._vtime[row]

    def event_times(self) -> Dict[EventId, float]:
        """Materialize the ``{EventId: vtime}`` dict of the whole run."""
        assert self._vtime is not None, "store built without track_vtime"
        proc, seq, vt = self._proc, self._seq, self._vtime
        return {
            EventId(proc[r], seq[r]): vt[r] for r in range(len(proc))
        }

    # ------------------------------------------------------------------
    # row-level reads
    # ------------------------------------------------------------------
    def row_of(self, proc: ProcessId, index: int) -> int:
        """Global row of the *index*-th (1-based) event at *proc*."""
        return self._rows_of[proc][index - 1]

    def proc_of(self, row: int) -> ProcessId:
        return self._proc[row]

    def seq_of(self, row: int) -> int:
        return self._seq[row]

    def kind_of(self, row: int) -> int:
        """The compact kind code (``KIND_LOCAL``/``KIND_SEND``/``KIND_RECEIVE``)."""
        return self._kind[row]

    def msg_of(self, row: int) -> int:
        """Message id of the event at *row*, or -1 for local events."""
        return self._msg[row]

    def send_row_of(self, msg_id: MessageId) -> int:
        """Global row of the send event of *msg_id* (the send anchor)."""
        return self._msend[msg_id]

    def recv_row_of(self, msg_id: MessageId) -> int:
        """Global row of the receive of *msg_id*, or -1 while in flight."""
        return self._mrecv[msg_id]

    def column(self, name: str):
        """Zero-copy numpy view of a column (requires numpy).

        Valid names: ``proc``, ``seq``, ``kind``, ``msg``, ``vtime``,
        ``msg_src``, ``msg_dst``, ``msg_send_row``, ``msg_recv_row``.
        The view aliases the live buffer — take it after appends stop, or
        re-take it after every append burst (``array`` reallocates as it
        grows).
        """
        import numpy as np

        cols = {
            "proc": self._proc, "seq": self._seq, "kind": self._kind,
            "msg": self._msg, "vtime": self._vtime,
            "msg_src": self._msrc, "msg_dst": self._mdst,
            "msg_send_row": self._msend, "msg_recv_row": self._mrecv,
        }
        col = cols[name]
        if col is None:
            raise ValueError(f"column {name!r} not tracked by this store")
        dtype = {"b": np.int8, "i": np.int32, "d": np.float64}[col.typecode]
        return np.frombuffer(col, dtype=dtype)

    # ------------------------------------------------------------------
    # object materialization (the unchanged public API, on demand)
    # ------------------------------------------------------------------
    def event_id(self, row: int) -> EventId:
        return EventId(self._proc[row], self._seq[row])

    def event(self, row: int) -> Event:
        """Materialize the event at *row* as a public :class:`Event`."""
        kind = self._kind[row]
        eid = EventId(self._proc[row], self._seq[row])
        if kind == KIND_LOCAL:
            return Event(eid, EventKind.LOCAL)
        msg_id = self._msg[row]
        peer = (
            self._mdst[msg_id] if kind == KIND_SEND else self._msrc[msg_id]
        )
        return Event(eid, _KIND_TO_ENUM[kind], msg_id=msg_id, peer=peer)

    def message(self, msg_id: MessageId) -> Message:
        """Materialize message *msg_id* (``recv_event=None`` while in flight)."""
        if not 0 <= msg_id < len(self._msrc):
            raise ExecutionError(f"unknown message id {msg_id}")
        send_row = self._msend[msg_id]
        recv_row = self._mrecv[msg_id]
        return Message(
            msg_id,
            self._msrc[msg_id],
            self._mdst[msg_id],
            EventId(self._proc[send_row], self._seq[send_row]),
            None
            if recv_row < 0
            else EventId(self._proc[recv_row], self._seq[recv_row]),
        )

    def events_at(self, proc: ProcessId) -> Tuple[Event, ...]:
        """Materialize the ordered events of *proc*."""
        return tuple(self.event(row) for row in self._rows_of[proc])

    def messages(self) -> Tuple[Message, ...]:
        """Materialize all messages, in send order."""
        return tuple(self.message(m) for m in range(len(self._msrc)))

    def receive_pairs(self) -> List[Tuple[EventId, EventId]]:
        """``(recv_eid, send_eid)`` per delivered message, in send order.

        Only receives are materialized — this is the columnar fast path
        the numpy bulk kernel consumes instead of walking full ``Event``
        objects.
        """
        proc, seq = self._proc, self._seq
        out: List[Tuple[EventId, EventId]] = []
        for m in range(len(self._msrc)):
            rr = self._mrecv[m]
            if rr < 0:
                continue
            sr = self._msend[m]
            out.append(
                (EventId(proc[rr], seq[rr]), EventId(proc[sr], seq[sr]))
            )
        return out

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_execution(
        cls, execution: Execution, *, track_vtime: bool = False
    ) -> "EventStore":
        """Re-encode an object-model execution as columns, id-identically.

        Store message ids are allocated in append order, so sends must be
        replayed in original message-id order for the round-trip to be
        exact.  ``delivery_order()`` alone does not guarantee that (its
        process-major merge can reorder independent sends), so this walks
        a merge with one extra gate: a send is deferred until every
        lower-numbered message has been sent.  The original construction
        order witnesses that such an order exists, so the merge always
        progresses.
        """
        store = cls(
            execution.n_processes,
            execution.graph,
            track_vtime=track_vtime,
        )
        n = execution.n_processes
        per_proc = [execution.events_at(p) for p in range(n)]
        cursors = [0] * n
        sent: set = set()
        next_msg = 0
        total = execution.n_events
        done = 0
        while done < total:
            progressed = False
            for p in range(n):
                while cursors[p] < len(per_proc[p]):
                    ev = per_proc[p][cursors[p]]
                    if ev.is_local:
                        store.append_local(p)
                    elif ev.is_send:
                        if ev.msg_id != next_msg:
                            break
                        msg = execution.message(ev.msg_id)
                        store.append_send(msg.src, msg.dst)
                        sent.add(ev.msg_id)
                        next_msg += 1
                    else:
                        if ev.msg_id not in sent:
                            break
                        store.append_receive(p, ev.msg_id)
                    cursors[p] += 1
                    done += 1
                    progressed = True
            if not progressed:
                raise ExecutionError(
                    "execution is not causally consistent: cannot replay "
                    "sends in message-id order"
                )
        return store

    def freeze(self) -> "ColumnarExecution":
        """An :class:`Execution` view over these columns (lazy objects)."""
        return ColumnarExecution(self)

    def materialize(self) -> Execution:
        """A plain object-model :class:`Execution` copy of the store."""
        return Execution(
            self._n,
            [self.events_at(p) for p in range(self._n)],
            self.messages(),
            self._graph,
        )


class ColumnarExecution(Execution):
    """An :class:`Execution` backed by an :class:`EventStore`.

    Every inherited method works unchanged: the object-model attributes
    (``_events_by_proc``, ``_messages``, ``_by_id``) are materialized
    lazily on first touch via ``__getattr__``, so consumers that never
    ask for event objects (O(1) counts, the columnar kernel fast path)
    keep the columnar memory footprint.
    """

    def __init__(self, store: EventStore) -> None:
        # deliberately NOT calling Execution.__init__: the whole point is
        # to defer the per-event object materialization it performs
        self._n = store.n_processes
        self._graph = store.graph
        self._store = store

    @property
    def store(self) -> EventStore:
        """The backing columnar store."""
        return self._store

    def __getattr__(self, name: str):
        # lazy materialization of the object-model attributes; runs only
        # on first access (absent attributes), then caches on the instance
        if name == "_events_by_proc":
            value: object = tuple(
                self._store.events_at(p) for p in range(self._n)
            )
        elif name == "_messages":
            value = self._store.messages()
        elif name == "_by_id":
            value = {
                ev.eid: ev for evts in self._events_by_proc for ev in evts
            }
        else:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            )
        object.__setattr__(self, name, value)
        return value

    # O(1) overrides that would otherwise force materialization
    def __len__(self) -> int:
        return self._store.n_events

    @property
    def n_events(self) -> int:
        return self._store.n_events

    def __contains__(self, eid: EventId) -> bool:
        return (
            0 <= eid.proc < self._n
            and 1 <= eid.index <= self._store.count_at(eid.proc)
        )

    def event_counts(self) -> List[int]:
        return self._store.counts()

    def receive_pairs(self) -> List[Tuple[EventId, EventId]]:
        return self._store.receive_pairs()

    def max_events_per_process(self) -> int:
        return max(self._store.counts(), default=0)


class ColumnarExecutionBuilder:
    """Drop-in :class:`~repro.core.execution.ExecutionBuilder` replacement.

    Same method surface and validation errors, but events land in an
    :class:`EventStore` instead of per-event heap objects; the ``Event`` /
    ``Message`` objects it *returns* are materialized transiently for the
    caller (clock hooks consume and drop them) — nothing object-shaped is
    retained.  :meth:`freeze` yields a :class:`ColumnarExecution`.
    """

    __slots__ = ("_store", "_frozen")

    def __init__(
        self,
        n_processes: int,
        graph: Optional["CommunicationGraph"] = None,
        *,
        track_vtime: bool = False,
    ) -> None:
        self._store = EventStore(
            n_processes, graph, track_vtime=track_vtime
        )
        self._frozen = False

    @property
    def store(self) -> EventStore:
        return self._store

    @property
    def n_processes(self) -> int:
        return self._store.n_processes

    def _check_open(self) -> None:
        if self._frozen:
            raise ExecutionError("builder already frozen")

    def local(self, proc: ProcessId) -> Event:
        self._check_open()
        return self._store.event(self._store.append_local(proc))

    def send(self, src: ProcessId, dst: ProcessId) -> MessageId:
        self._check_open()
        return self._store.append_send(src, dst)

    def receive(self, proc: ProcessId, msg_id: MessageId) -> Event:
        self._check_open()
        return self._store.event(self._store.append_receive(proc, msg_id))

    def send_and_receive(
        self, src: ProcessId, dst: ProcessId
    ) -> Tuple[Event, Event]:
        msg_id = self.send(src, dst)
        send_ev = self._store.event(self._store.send_row_of(msg_id))
        recv_ev = self.receive(dst, msg_id)
        return send_ev, recv_ev

    def events_so_far(self, proc: ProcessId) -> int:
        return self._store.count_at(proc)

    def last_event(self, proc: ProcessId) -> Event:
        if self._store.count_at(proc) == 0:
            raise ExecutionError(f"process {proc} has no events yet")
        return self._store.event(
            self._store.row_of(proc, self._store.count_at(proc))
        )

    def message(self, msg_id: MessageId) -> Message:
        return self._store.message(msg_id)

    def freeze(self) -> ColumnarExecution:
        self._check_open()
        self._frozen = True
        return self._store.freeze()

"""Inline timestamps for arbitrary graphs via a vertex cover (paper Section 4).

Let ``VC`` be a vertex cover of the communication graph: every message is
sent from or to (or both) a process in ``VC``.  Processes in ``VC`` maintain
a vector clock *among themselves* (the ``mpre`` vector, one entry per cover
process); processes outside ``VC`` additionally learn, per cover neighbour
``c``, the index of the first event at ``c`` in each of their events' causal
future (the ``mpost`` vector).  An event's timestamp is

    ``⟨id, mctr, mpre[|VC|], mpost[|VC|]⟩``

— at most ``2|VC| + 2`` elements (Theorem 4.2).  Events at cover processes
are final immediately (they store no ``mpost``); an event at ``j ∉ VC``
becomes final once ``mpost[c]`` is known for every cover process ``c``
adjacent to ``j`` — i.e. after ``j`` completes a round trip with each cover
neighbour.  Entries for cover processes with no channel to ``j`` are ``∞``
forever and do not block finalization (paper's Remark in Section 4).

Definitions implemented (with max ∅ = 0 and min ∅ = ∞):

- ``mctr_e``    — 1-based index of ``e`` at its process;
- ``mpre_e[c]`` — max ``mctr_f`` over events ``f`` at ``c`` with ``f ⪯ e``;
- ``mpost_e[c]``— min ``mctr_f`` over events ``f`` at ``c`` such that some
  message ``m`` from ``j`` to ``c`` has ``e ⪯ send(m)`` and
  ``receive(m) ⪯ f`` (the minimum is attained at ``f = receive(m)``).

Comparison is Theorem 4.1's four-case operator.  Control messages (a cover
process acknowledging ``⟨mctr_m, mctr_of_receive⟩`` to a non-cover sender)
are resequenced per directed pair exactly as in
:class:`repro.clocks.inline_star.StarInlineClock`; with ``VC = {center}`` on
a star graph this class degenerates to the Section-3 algorithm (a property
the test suite checks exhaustively).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.clocks.base import (
    INFINITY,
    ClockAlgorithm,
    ControlMessage,
    Timestamp,
    dominance_rows,
    vector_leq,
    vector_lt,
)
from repro.core.events import Event, EventId, ProcessId
from repro.topology.graph import CommunicationGraph

PostValue = Union[int, float]


@dataclass(frozen=True, slots=True)
class CoverTimestamp(Timestamp):
    """A finalized vertex-cover inline timestamp.

    ``mpre``/``mpost`` are indexed by position in the sorted ``cover`` tuple;
    ``mpost`` is ``None`` for events at cover processes.  ``cover`` itself is
    global protocol knowledge and is not counted among the elements.
    """

    id: ProcessId
    mctr: int
    mpre: Tuple[int, ...]
    mpost: Optional[Tuple[PostValue, ...]]
    cover: Tuple[ProcessId, ...]

    @property
    def in_cover(self) -> bool:
        return self.mpost is None

    def precedes(self, other: "Timestamp") -> bool:
        """Theorem 4.1's comparison: ``e -> f`` iff ``self < other``."""
        if not isinstance(other, CoverTimestamp):
            raise TypeError("cannot compare across schemes")
        if self.cover != other.cover:
            raise ValueError("timestamps use different vertex covers")
        e, f = self, other
        if e.in_cover and f.in_cover:
            return vector_lt(e.mpre, f.mpre)
        if e.in_cover and not f.in_cover:
            return vector_leq(e.mpre, f.mpre)
        assert e.mpost is not None
        if f.id != e.id:
            return any(
                post_c <= pre_c for post_c, pre_c in zip(e.mpost, f.mpre)
            )
        return e.mctr < f.mctr

    @classmethod
    def precedes_matrix(cls, timestamps):
        """Word-parallel Theorem 4.1 comparison over all pairs.

        Cover→any pairs need componentwise ``mpre`` dominance (an AND across
        cover coordinates of scalar sweeps, strict for cover targets);
        non-cover sources use the existential ``mpost[c] <= mpre[c]`` rule
        (an OR across coordinates); same-process non-cover pairs are patched
        with the ``mctr`` prefix order.
        """
        if not timestamps:
            return []
        cover = timestamps[0].cover
        if any(t.cover != cover for t in timestamps):
            return None  # pairwise raises the mixed-cover error
        m = len(timestamps)
        k = len(cover)
        rows = [0] * m
        cov_idx = [i for i, t in enumerate(timestamps) if t.in_cover]
        non_idx = [i for i, t in enumerate(timestamps) if not t.in_cover]
        # cover sources: componentwise mpre <= mpre, AND across coordinates
        if cov_idx:
            cov_mask = 0
            for i in cov_idx:
                cov_mask |= 1 << i
            acc = [cov_mask] * m
            for c in range(k):
                tmp = [0] * m
                src = [(timestamps[i].mpre[c], i) for i in cov_idx]
                dst = [(t.mpre[c], j) for j, t in enumerate(timestamps)]
                dominance_rows(src, dst, tmp)
                for j in range(m):
                    acc[j] &= tmp[j]
            # strict (vector_lt) for cover targets: drop equal-mpre sources
            eq_groups: Dict[Tuple[int, ...], int] = {}
            for i in cov_idx:
                key = timestamps[i].mpre
                eq_groups[key] = eq_groups.get(key, 0) | (1 << i)
            for j, t in enumerate(timestamps):
                if t.in_cover:
                    rows[j] |= acc[j] & ~eq_groups.get(t.mpre, 0)
                else:
                    rows[j] |= acc[j]  # vector_leq: equality allowed
        # non-cover sources, different process: any mpost[c] <= mpre[c]
        for c in range(k):
            src = [(timestamps[i].mpost[c], i) for i in non_idx]
            dst = [(t.mpre[c], j) for j, t in enumerate(timestamps)]
            dominance_rows(src, dst, rows)
        # same-process non-cover pairs use mctr order
        by_proc: Dict[ProcessId, List[int]] = {}
        for i in non_idx:
            by_proc.setdefault(timestamps[i].id, []).append(i)
        for idxs in by_proc.values():
            group = 0
            for i in idxs:
                group |= 1 << i
            prefix = 0
            for i in sorted(idxs, key=lambda i: timestamps[i].mctr):
                rows[i] = (rows[i] & ~group) | prefix
                prefix |= 1 << i
        return rows

    def elements(self) -> Tuple[PostValue, ...]:
        """Stored elements: ``2 + |VC|`` for cover events,
        ``2 + 2|VC|`` for the rest (Theorem 4.2's bound)."""
        base: Tuple[PostValue, ...] = (self.id, self.mctr) + self.mpre
        if self.mpost is None:
            return base
        return base + self.mpost


@dataclass(slots=True)
class _Record:
    mctr: int
    mpre: Tuple[int, ...]
    mpost: Optional[List[PostValue]]  # None for cover events
    final: bool = False


class CoverInlineClock(ClockAlgorithm):
    """The Section-4 algorithm for an arbitrary communication graph.

    Parameters
    ----------
    graph:
        The communication topology; used to validate the cover, to know
        which ``mpost`` entries can ever be filled, and to reject messages
        that do not follow an edge.
    cover:
        A vertex cover of *graph*.  Smaller covers give smaller timestamps;
        see :mod:`repro.topology.vertex_cover` for ways to compute one.
    """

    name = "inline-cover"
    characterizes_causality = True

    def __init__(
        self,
        graph: CommunicationGraph,
        cover: Optional[Tuple[ProcessId, ...]] = None,
    ) -> None:
        super().__init__(graph.n_vertices)
        if cover is None:
            from repro.topology.vertex_cover import best_cover

            cover = tuple(best_cover(graph))
        self._cover: Tuple[ProcessId, ...] = tuple(sorted(set(cover)))
        if not graph.is_vertex_cover(self._cover):
            raise ValueError(f"{self._cover} is not a vertex cover")
        self._graph = graph
        self._cpos: Dict[ProcessId, int] = {
            c: i for i, c in enumerate(self._cover)
        }
        k = len(self._cover)
        self._mctr = [0] * self._n
        self._mpre: List[List[int]] = [[0] * k for _ in range(self._n)]
        self._records: Dict[ProcessId, List[_Record]] = {
            p: [] for p in range(self._n)
        }
        # which mpost slots of a non-cover process can ever become finite
        self._adjacent_cover: Dict[ProcessId, Tuple[int, ...]] = {}
        for p in range(self._n):
            if p not in self._cpos:
                self._adjacent_cover[p] = tuple(
                    self._cpos[c] for c in sorted(graph.neighbors(p))
                )
        # control sequencing, per directed pair (c -> j)
        self._ctrl_seq_out: Dict[Tuple[ProcessId, ProcessId], int] = {}
        self._ctrl_seq_in: Dict[Tuple[ProcessId, ProcessId], int] = {}
        self._ctrl_buffer: Dict[
            Tuple[ProcessId, ProcessId], Dict[int, Tuple[int, int]]
        ] = {}
        self._ctrl_emitted: Dict[
            Tuple[ProcessId, ProcessId], List[Tuple[int, int]]
        ] = {}
        # per (j, cover-slot): events with mctr <= this have final mpost[slot]
        self._upto: Dict[Tuple[ProcessId, int], int] = {}
        self._terminated = False

    # ------------------------------------------------------------------
    @property
    def cover(self) -> Tuple[ProcessId, ...]:
        return self._cover

    @property
    def graph(self) -> CommunicationGraph:
        return self._graph

    def in_cover(self, p: ProcessId) -> bool:
        return p in self._cpos

    # ------------------------------------------------------------------
    def _new_event(self, ev: Event) -> _Record:
        p = ev.proc
        self._mctr[p] += 1
        if ev.index != self._mctr[p]:
            raise ValueError(
                f"event index {ev.index} does not match local counter "
                f"{self._mctr[p]}"
            )
        if p in self._cpos:
            self._mpre[p][self._cpos[p]] = self._mctr[p]
            rec = _Record(
                mctr=self._mctr[p], mpre=tuple(self._mpre[p]), mpost=None,
                final=True,
            )
            self._mark_final(ev.eid)
        else:
            rec = _Record(
                mctr=self._mctr[p],
                mpre=tuple(self._mpre[p]),
                mpost=[INFINITY] * len(self._cover),
            )
            if not self._adjacent_cover[p]:
                # isolated non-cover process: nothing to wait for
                rec.final = True
                self._mark_final(ev.eid)
        self._records[p].append(rec)
        return rec

    def _check_edge(self, ev: Event) -> None:
        if ev.peer is not None and not self._graph.has_edge(ev.proc, ev.peer):
            raise ValueError(
                f"message between p{ev.proc} and p{ev.peer} "
                f"violates the communication graph"
            )

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def on_local(self, ev: Event) -> None:
        self._new_event(ev)

    def on_send(self, ev: Event) -> Any:
        self._check_edge(ev)
        rec = self._new_event(ev)
        return (ev.proc, rec.mctr, rec.mpre)

    def on_receive(self, ev: Event, payload: Any) -> List[ControlMessage]:
        self._check_edge(ev)
        src, mctr_m, mpre_m = payload
        p = ev.proc
        mine = self._mpre[p]
        for i, v in enumerate(mpre_m):
            if v > mine[i]:
                mine[i] = v
        rec = self._new_event(ev)
        if p in self._cpos and src not in self._cpos:
            # acknowledge to the non-cover sender (paper: control message
            # with the send index and the receive index at the cover process)
            key = (p, src)
            seq = self._ctrl_seq_out.get(key, 0)
            self._ctrl_seq_out[key] = seq + 1
            self._ctrl_emitted.setdefault(key, []).append((mctr_m, rec.mctr))
            return [ControlMessage(src=p, dst=src, payload=(seq, mctr_m, rec.mctr))]
        return []

    # ------------------------------------------------------------------
    # control handling
    # ------------------------------------------------------------------
    def on_control(self, src: ProcessId, dst: ProcessId, payload: Any) -> None:
        """Deliver a control message, resequencing per (src, dst) pair."""
        if src not in self._cpos:
            raise ValueError(f"control message from non-cover process p{src}")
        seq, a, b = payload
        key = (src, dst)
        buf = self._ctrl_buffer.setdefault(key, {})
        if seq in buf:
            raise ValueError(f"duplicate control seq {seq} on {key}")
        buf[seq] = (a, b)
        expected = self._ctrl_seq_in.get(key, 0)
        while expected in buf:
            a2, b2 = buf.pop(expected)
            expected += 1
            self._apply_control(src, dst, a2, b2)
        self._ctrl_seq_in[key] = expected

    def _apply_control(self, c: ProcessId, j: ProcessId, a: int, b: int) -> None:
        slot = self._cpos[c]
        upto = self._upto.get((j, slot), 0)
        if a <= upto:
            return
        for rec in self._records[j][upto:a]:
            assert rec.mpost is not None
            if b < rec.mpost[slot]:
                rec.mpost[slot] = b
            if not rec.final and self._is_complete(j, rec):
                rec.final = True
                self._mark_final(EventId(j, rec.mctr))
        self._upto[(j, slot)] = a

    def _is_complete(self, j: ProcessId, rec: _Record) -> bool:
        assert rec.mpost is not None
        return all(
            rec.mpost[slot] != INFINITY for slot in self._adjacent_cover[j]
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _record_of(self, eid: EventId) -> _Record:
        recs = self._records[eid.proc]
        if not 1 <= eid.index <= len(recs):
            raise KeyError(f"unknown event {eid}")
        return recs[eid.index - 1]

    def timestamp(self, eid: EventId) -> Optional[CoverTimestamp]:
        rec = self._record_of(eid)
        if not rec.final:
            return None
        return self._to_timestamp(eid, rec)

    def provisional_timestamp(self, eid: EventId) -> CoverTimestamp:
        """Current (possibly provisional) value, for inspection/debugging."""
        return self._to_timestamp(eid, self._record_of(eid))

    def _to_timestamp(self, eid: EventId, rec: _Record) -> CoverTimestamp:
        return CoverTimestamp(
            id=eid.proc,
            mctr=rec.mctr,
            mpre=rec.mpre,
            mpost=None if rec.mpost is None else tuple(rec.mpost),
            cover=self._cover,
        )

    def is_final(self, eid: EventId) -> bool:
        return self._record_of(eid).final

    # ------------------------------------------------------------------
    def timestamp_bits(self, ts: Timestamp, max_events: int) -> int:
        """Theorem 4.3 accounting: ``id`` costs ``ceil(log2 n)`` bits,
        every other stored element ``ceil(log2(K+1))`` bits (∞ entries are
        encoded as 0, which no real receive index uses)."""
        import math

        assert isinstance(ts, CoverTimestamp)
        counter = max(1, math.ceil(math.log2(max_events + 1)))
        ident = max(1, math.ceil(math.log2(self._n)))
        return ident + (ts.n_elements - 1) * counter

    # ------------------------------------------------------------------
    def finalize_at_termination(self) -> List[EventId]:
        """Flush undelivered acknowledgements; remaining ∞ become permanent."""
        if self._terminated:
            return []
        self._terminated = True
        start = len(self._newly_finalized)
        for key, emitted in self._ctrl_emitted.items():
            c, j = key
            applied = self._ctrl_seq_in.get(key, 0)
            for seq in range(applied, len(emitted)):
                a, b = emitted[seq]
                self._apply_control(c, j, a, b)
            self._ctrl_seq_in[key] = len(emitted)
            self._ctrl_buffer.get(key, {}).clear()
        for p in range(self._n):
            if p in self._cpos:
                continue
            for rec in self._records[p]:
                if not rec.final:
                    rec.final = True
                    self._mark_final(EventId(p, rec.mctr))
        return list(self._newly_finalized[start:])

"""Lamport scalar clocks [Lamport 1978].

The classic 1-element logical clock: consistent with causality
(``e -> f`` implies ``L(e) < L(f)``) but *not characterizing* — concurrent
events may receive ordered clock values.  Included as the minimal baseline
for the size/accuracy trade-off benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.clocks.base import (
    ClockAlgorithm,
    ControlMessage,
    Timestamp,
    total_order_rows,
)
from repro.core.events import Event, EventId


@dataclass(frozen=True, slots=True)
class LamportTimestamp(Timestamp):
    """``(clock, proc)`` — the process id is used only for tie-breaking."""

    clock: int
    proc: int

    def precedes(self, other: "Timestamp") -> bool:
        if not isinstance(other, LamportTimestamp):
            raise TypeError("cannot compare across schemes")
        # Total order (Lamport's tie-break by process id).  This *claims*
        # more order than happened-before provides; the scheme is marked
        # non-characterizing.
        return (self.clock, self.proc) < (other.clock, other.proc)

    @classmethod
    def precedes_matrix(cls, timestamps):
        return total_order_rows([(t.clock, t.proc) for t in timestamps])

    def elements(self) -> Tuple[int, ...]:
        return (self.clock,)


class LamportClock(ClockAlgorithm):
    """Online scalar clock; every timestamp is final immediately."""

    name = "lamport"
    characterizes_causality = False

    def __init__(self, n_processes: int) -> None:
        super().__init__(n_processes)
        self._clock = [0] * n_processes
        self._ts: Dict[EventId, LamportTimestamp] = {}

    def _tick(self, ev: Event, floor: int = 0) -> None:
        p = ev.proc
        self._clock[p] = max(self._clock[p], floor) + 1
        self._ts[ev.eid] = LamportTimestamp(self._clock[p], p)
        self._mark_final(ev.eid)

    def on_local(self, ev: Event) -> None:
        self._tick(ev)

    def on_send(self, ev: Event) -> Any:
        self._tick(ev)
        return self._clock[ev.proc]

    def on_receive(self, ev: Event, payload: Any) -> List[ControlMessage]:
        self._tick(ev, floor=int(payload))
        return []

    def timestamp(self, eid: EventId) -> Optional[LamportTimestamp]:
        return self._ts.get(eid)

    def is_final(self, eid: EventId) -> bool:
        return eid in self._ts

"""Replaying clock algorithms over recorded executions.

The replayer feeds an :class:`~repro.core.execution.Execution` to one or
more :class:`~repro.clocks.base.ClockAlgorithm` instances in a causally
consistent total order, transporting application payloads between the send
and receive hooks and delivering control messages *instantly* (zero-latency
control channels).  Instant delivery gives each inline scheme its best-case
finalization behaviour; hosts that care about finalization *timing* should
use the discrete-event simulator (:mod:`repro.sim`) instead, which routes
control messages through channels with real delays.

The result per algorithm is a :class:`TimestampAssignment`: an immutable
event → timestamp map with helpers to compare events and to validate the
scheme against the ground-truth happened-before oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.clocks.base import ClockAlgorithm, Timestamp, precedes_matrix_rows
from repro.core.events import EventId
from repro.core.execution import Execution
from repro.core.happened_before import HappenedBeforeOracle
from repro.core.incremental import AnyOracle, as_batch_oracle
from repro.obs.metrics import active_registry


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of checking a scheme against the happened-before oracle.

    ``false_negatives`` are ordered pairs ``(e, f)`` with ``e -> f`` but
    ``not ts_e.precedes(ts_f)`` — a *consistency* violation, fatal for every
    scheme.  ``false_positives`` are pairs claimed ordered by the timestamps
    but actually concurrent — expected to be empty for characterizing
    schemes, and merely counted for lossy ones (Lamport, plausible clocks).
    """

    algorithm: str
    n_events: int
    n_ordered_pairs: int
    n_concurrent_pairs: int
    false_negatives: Tuple[Tuple[EventId, EventId], ...]
    false_positives: Tuple[Tuple[EventId, EventId], ...]

    @property
    def is_consistent(self) -> bool:
        """Causal order never contradicted (no false negatives)."""
        return not self.false_negatives

    @property
    def characterizes(self) -> bool:
        """Comparison is exactly happened-before on the checked events."""
        return not self.false_negatives and not self.false_positives

    @property
    def false_positive_rate(self) -> float:
        """Fraction of concurrent ordered-pairs wrongly claimed ordered."""
        if self.n_concurrent_pairs == 0:
            return 0.0
        return len(self.false_positives) / (2 * self.n_concurrent_pairs)


class TimestampAssignment:
    """The timestamps an algorithm assigned to one execution."""

    def __init__(
        self,
        algorithm: ClockAlgorithm,
        execution: Execution,
        timestamps: Mapping[EventId, Timestamp],
        finalized_during_run: Set[EventId],
    ) -> None:
        self._algorithm = algorithm
        self._execution = execution
        self._ts: Dict[EventId, Timestamp] = dict(timestamps)
        self._finalized_during_run = frozenset(finalized_during_run)

    @property
    def algorithm(self) -> ClockAlgorithm:
        return self._algorithm

    @property
    def execution(self) -> Execution:
        return self._execution

    @property
    def finalized_during_run(self) -> frozenset:
        """Events whose timestamps became permanent before termination."""
        return self._finalized_during_run

    def __getitem__(self, eid: EventId) -> Timestamp:
        return self._ts[eid]

    def __contains__(self, eid: EventId) -> bool:
        return eid in self._ts

    def __len__(self) -> int:
        return len(self._ts)

    def items(self) -> Iterable[Tuple[EventId, Timestamp]]:
        return self._ts.items()

    def precedes(self, e: EventId, f: EventId) -> bool:
        """Timestamp-based causality decision for two events."""
        return self._ts[e].precedes(self._ts[f])

    def concurrent(self, e: EventId, f: EventId) -> bool:
        return e != f and not self.precedes(e, f) and not self.precedes(f, e)

    # ------------------------------------------------------------------
    def max_elements(self) -> int:
        """Largest element count of any assigned timestamp (paper's metric)."""
        return max((ts.n_elements for ts in self._ts.values()), default=0)

    def mean_elements(self) -> float:
        if not self._ts:
            return 0.0
        return sum(ts.n_elements for ts in self._ts.values()) / len(self._ts)

    # ------------------------------------------------------------------
    def validate_sampled(
        self,
        oracle: Optional[AnyOracle] = None,
        n_pairs: int = 10_000,
        seed: int = 0,
    ) -> ValidationReport:
        """Validation over a random sample of event pairs.

        Exhaustive validation is quadratic in the event count; for large
        simulations this checks *n_pairs* uniformly random ordered pairs
        instead.  The report's pair counts refer to the sample.

        Accepts either oracle flavor; an
        :class:`~repro.core.incremental.IncrementalHBOracle` is frozen into
        a batch view (reusing its rows) rather than rebuilt from scratch.
        """
        import random as _random

        if oracle is None:
            oracle = HappenedBeforeOracle(self._execution)
        else:
            oracle = as_batch_oracle(oracle, self._execution)
        rng = _random.Random(seed)
        ids = [ev.eid for ev in self._execution.all_events()]
        if len(ids) < 2:
            return self.validate(oracle)
        false_neg = []
        false_pos = []
        n_ordered = 0
        n_concurrent = 0
        for _ in range(n_pairs):
            a, b = rng.sample(ids, 2)
            # Check both directions of the sampled pair, but classify the
            # unordered pair once, so ``n_ordered + n_concurrent == n_pairs``
            # and every concurrent pair contributes exactly the two
            # direction-checks the ``false_positive_rate`` denominator
            # assumes.  (Checking one direction while counting the pair
            # used to skew both totals.)
            hb_ab = oracle.happened_before(a, b)
            hb_ba = oracle.happened_before(b, a)
            for (x, y), hb in (((a, b), hb_ab), ((b, a), hb_ba)):
                claimed = self._ts[x].precedes(self._ts[y])
                if hb and not claimed:
                    false_neg.append((x, y))
                elif claimed and not hb:
                    false_pos.append((x, y))
            if hb_ab or hb_ba:
                n_ordered += 1
            else:
                n_concurrent += 1
        return ValidationReport(
            algorithm=self._algorithm.name,
            n_events=len(ids),
            n_ordered_pairs=n_ordered,
            n_concurrent_pairs=n_concurrent,
            false_negatives=tuple(false_neg),
            false_positives=tuple(false_pos),
        )

    def validate(
        self,
        oracle: Optional[AnyOracle] = None,
        events: Optional[Sequence[EventId]] = None,
    ) -> ValidationReport:
        """Exhaustively compare timestamp order with true happened-before.

        *events* restricts the check to a subset (e.g. a finalized cut);
        defaults to every event in the execution.  Either oracle flavor is
        accepted — an incremental oracle is frozen, not rebuilt.

        The comparison is matrix-based: the scheme's full precedes-matrix
        (one packed-int row per event, built word-parallel when the scheme
        provides :meth:`~repro.clocks.base.Timestamp.precedes_matrix`) is
        XORed against the oracle's causal-past masks, so only mismatching
        pairs are ever materialized.  The report is identical — field for
        field, including mismatch ordering — to the pairwise reference
        implementation :meth:`validate_pairwise`.

        When the oracle holds its rows on the numpy backend and the scheme
        provides :meth:`~repro.clocks.base.Timestamp.precedes_matrix_words`,
        the whole XOR/popcount/decode happens on uint64 matrices without
        ever materializing packed ints — same report, same ``validate.*``
        counters (the backend-differential fuzzer invariant pins it).
        """
        if oracle is None:
            oracle = HappenedBeforeOracle(self._execution)
        else:
            oracle = as_batch_oracle(oracle, self._execution)
        ids = (
            list(events)
            if events is not None
            else [ev.eid for ev in self._execution.all_events()]
        )
        m = len(ids)
        ts_list = [self._ts[eid] for eid in ids]
        if events is None and m:
            # full-execution check: ids follow the oracle's dense indexing,
            # so the array matrices line up row-for-row
            report = self._validate_matrix_words(oracle, ids, ts_list)
            if report is not None:
                return report
        scheme_rows = precedes_matrix_rows(ts_list)
        if events is None:
            # ids follow all_events() order == the oracle's dense indexing,
            # so its strict causal-past masks are the truth rows verbatim.
            hb_rows = oracle.past_masks()
        else:
            sel = [oracle.index_of(eid) for eid in ids]
            masks = oracle.past_masks()
            hb_rows = []
            for j in range(m):
                mask_j = masks[sel[j]]
                row = 0
                for i in range(m):
                    row |= (mask_j >> sel[i] & 1) << i
                hb_rows.append(row)
        n_ordered = sum(row.bit_count() for row in hb_rows)
        n_concurrent = m * (m - 1) // 2 - n_ordered
        # Mismatch (i claims-vs-truth j) sorted to the pairwise reference
        # order: pair-major over (min, max) positions, direction min->max
        # before max->min.
        neg_keyed: List[Tuple[Tuple[int, int, int], Tuple[EventId, EventId]]]
        neg_keyed = []
        pos_keyed: List[Tuple[Tuple[int, int, int], Tuple[EventId, EventId]]]
        pos_keyed = []
        for j in range(m):
            diff = scheme_rows[j] ^ hb_rows[j]
            diff &= ~(1 << j)  # scheme rows keep a zero diagonal by contract
            hb_row = hb_rows[j]
            while diff:
                low = diff & -diff
                i = low.bit_length() - 1
                diff ^= low
                key = (min(i, j), max(i, j), 0 if i < j else 1)
                if hb_row >> i & 1:
                    neg_keyed.append((key, (ids[i], ids[j])))
                else:
                    pos_keyed.append((key, (ids[i], ids[j])))
        neg_keyed.sort(key=lambda kv: kv[0])
        pos_keyed.sort(key=lambda kv: kv[0])
        # observability: how much work the matrix validator did — compared
        # cells (the full m×m grid) and mismatch bits it had to decode
        reg = active_registry()
        reg.counter("validate.cells").inc(m * m)
        reg.counter("validate.mismatch_decodes").inc(
            len(neg_keyed) + len(pos_keyed)
        )
        reg.counter("validate.runs").inc()
        return ValidationReport(
            algorithm=self._algorithm.name,
            n_events=m,
            n_ordered_pairs=n_ordered,
            n_concurrent_pairs=n_concurrent,
            false_negatives=tuple(pair for _k, pair in neg_keyed),
            false_positives=tuple(pair for _k, pair in pos_keyed),
        )

    def _validate_matrix_words(
        self,
        oracle: HappenedBeforeOracle,
        ids: Sequence[EventId],
        ts_list: Sequence[Timestamp],
    ) -> Optional[ValidationReport]:
        """Array-native :meth:`validate` body; ``None`` = no fast path.

        Requires the oracle's numpy past matrix and a homogeneous
        timestamp class with a ``precedes_matrix_words`` override.  The
        decode walks only the nonzero words of the XOR, producing the
        exact keyed mismatch lists (and counter increments) of the
        packed-int path.
        """
        hb_mat = oracle.past_matrix()
        if hb_mat is None:
            return None
        cls = type(ts_list[0])
        if not all(type(t) is cls for t in ts_list):
            return None
        scheme_mat = cls.precedes_matrix_words(ts_list)
        if scheme_mat is None:
            return None
        import numpy as np

        m = len(ids)
        diff = scheme_mat ^ hb_mat
        jarr = np.arange(m)
        # scheme rows keep a zero diagonal by contract; clear it anyway to
        # mirror the packed-int path bit for bit
        diff[jarr, jarr >> 6] &= ~(
            np.uint64(1) << (jarr & 63).astype(np.uint64)
        )
        n_ordered = int(np.bitwise_count(hb_mat).sum(dtype=np.int64))
        n_concurrent = m * (m - 1) // 2 - n_ordered
        neg_keyed: List[Tuple[Tuple[int, int, int], Tuple[EventId, EventId]]]
        neg_keyed = []
        pos_keyed: List[Tuple[Tuple[int, int, int], Tuple[EventId, EventId]]]
        pos_keyed = []
        jj, ww = np.nonzero(diff)
        diff_words = diff[jj, ww].tolist()
        hb_words = hb_mat[jj, ww].tolist()
        for j, w, dw, hw in zip(jj.tolist(), ww.tolist(), diff_words, hb_words):
            base = w << 6
            while dw:
                low = dw & -dw
                b = low.bit_length() - 1
                dw ^= low
                i = base + b
                key = (min(i, j), max(i, j), 0 if i < j else 1)
                if hw >> b & 1:
                    neg_keyed.append((key, (ids[i], ids[j])))
                else:
                    pos_keyed.append((key, (ids[i], ids[j])))
        neg_keyed.sort(key=lambda kv: kv[0])
        pos_keyed.sort(key=lambda kv: kv[0])
        reg = active_registry()
        reg.counter("validate.cells").inc(m * m)
        reg.counter("validate.mismatch_decodes").inc(
            len(neg_keyed) + len(pos_keyed)
        )
        reg.counter("validate.runs").inc()
        return ValidationReport(
            algorithm=self._algorithm.name,
            n_events=m,
            n_ordered_pairs=n_ordered,
            n_concurrent_pairs=n_concurrent,
            false_negatives=tuple(pair for _k, pair in neg_keyed),
            false_positives=tuple(pair for _k, pair in pos_keyed),
        )

    def validate_pairwise(
        self,
        oracle: Optional[AnyOracle] = None,
        events: Optional[Sequence[EventId]] = None,
    ) -> ValidationReport:
        """Pairwise reference implementation of :meth:`validate`.

        Quadratic in both comparisons and oracle queries; kept as the
        ground-truth for the equivalence tests and the benchmark baseline.
        """
        if oracle is None:
            oracle = HappenedBeforeOracle(self._execution)
        else:
            oracle = as_batch_oracle(oracle, self._execution)
        ids = (
            list(events)
            if events is not None
            else [ev.eid for ev in self._execution.all_events()]
        )
        false_neg: List[Tuple[EventId, EventId]] = []
        false_pos: List[Tuple[EventId, EventId]] = []
        n_ordered = 0
        n_concurrent = 0
        for i, e in enumerate(ids):
            for f in ids[i + 1 :]:
                for a, b in ((e, f), (f, e)):
                    hb = oracle.happened_before(a, b)
                    claimed = self._ts[a].precedes(self._ts[b])
                    if hb and not claimed:
                        false_neg.append((a, b))
                    elif claimed and not hb:
                        false_pos.append((a, b))
                if oracle.happened_before(e, f) or oracle.happened_before(f, e):
                    n_ordered += 1
                else:
                    n_concurrent += 1
        return ValidationReport(
            algorithm=self._algorithm.name,
            n_events=len(ids),
            n_ordered_pairs=n_ordered,
            n_concurrent_pairs=n_concurrent,
            false_negatives=tuple(false_neg),
            false_positives=tuple(false_pos),
        )


def replay(
    execution: Execution,
    algorithms: Sequence[ClockAlgorithm],
    finalize: bool = True,
) -> List[TimestampAssignment]:
    """Run *algorithms* over *execution* with instant control delivery.

    When *finalize* is set (the default), termination finalization is applied
    at the end so every event has a permanent timestamp; events finalized
    only by that step are reported via
    :attr:`TimestampAssignment.finalized_during_run` being smaller than the
    full event set.
    """
    payloads: List[Dict[int, object]] = [dict() for _ in algorithms]
    finalized: List[Set[EventId]] = [set() for _ in algorithms]

    reg = active_registry()
    delay_hists = [
        reg.histogram("clock.finalization_delay_events", clock=algo.name)
        for algo in algorithms
    ]
    seq: Dict[EventId, int] = {}
    order = execution.delivery_order()
    for idx, ev in enumerate(order):
        seq[ev.eid] = idx
        for i, algo in enumerate(algorithms):
            if ev.is_local:
                algo.on_local(ev)
            elif ev.is_send:
                payloads[i][ev.msg_id] = algo.on_send(ev)  # type: ignore[index]
            else:
                payload = payloads[i].pop(ev.msg_id)  # type: ignore[arg-type]
                controls = algo.on_receive(ev, payload)
                for cm in controls:
                    algo.on_control(cm.src, cm.dst, cm.payload)
            newly = algo.drain_newly_finalized()
            if newly:
                finalized[i].update(newly)
                for eid in newly:
                    # time-to-non-⊥ in events under the replayer's total
                    # order (instant control delivery = best case)
                    delay_hists[i].observe(idx - seq[eid])

    results: List[TimestampAssignment] = []
    for i, algo in enumerate(algorithms):
        if finalize:
            algo.finalize_at_termination()
            algo.drain_newly_finalized()
        ts: Dict[EventId, Timestamp] = {}
        for ev in execution.all_events():
            t = algo.timestamp(ev.eid)
            if t is not None:
                ts[ev.eid] = t
        results.append(
            TimestampAssignment(algo, execution, ts, finalized[i])
        )
    return results


def replay_one(
    execution: Execution, algorithm: ClockAlgorithm, finalize: bool = True
) -> TimestampAssignment:
    """Convenience wrapper for a single algorithm."""
    return replay(execution, [algorithm], finalize=finalize)[0]

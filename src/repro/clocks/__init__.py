"""Timestamping algorithms: the paper's inline schemes and online baselines."""

from repro.clocks.base import (
    INFINITY,
    ClockAlgorithm,
    ControlMessage,
    Timestamp,
    vector_leq,
    vector_lt,
)
from repro.clocks.inline_cover import CoverInlineClock, CoverTimestamp
from repro.clocks.inline_star import StarInlineClock, StarTimestamp
from repro.clocks.lamport import LamportClock, LamportTimestamp
from repro.clocks.replay import (
    TimestampAssignment,
    ValidationReport,
    replay,
    replay_one,
)
from repro.clocks.vector import VectorClock, VectorTimestamp
from repro.clocks.vector_sk import SKVectorClock

__all__ = [
    "INFINITY",
    "ClockAlgorithm",
    "ControlMessage",
    "Timestamp",
    "vector_leq",
    "vector_lt",
    "CoverInlineClock",
    "CoverTimestamp",
    "StarInlineClock",
    "StarTimestamp",
    "LamportClock",
    "LamportTimestamp",
    "TimestampAssignment",
    "ValidationReport",
    "replay",
    "replay_one",
    "VectorClock",
    "VectorTimestamp",
    "SKVectorClock",
]

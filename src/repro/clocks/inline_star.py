"""Inline timestamps for the star network (paper Section 3, Figure 1).

A star network has one *central* process ``C`` and ``n-1`` *radial*
processes; every message travels between ``C`` and some radial process.  The
key idea: for events ``e``, ``f`` on different radial processes with
``e -> f`` there must be an event ``g`` at ``C`` with ``e -> g -> f``, so
events at ``C`` can serve as proxies.  Each event then needs only four
elements, ``⟨id, ctr, pre, post⟩``:

- ``id``    — the process where the event occurred;
- ``ctr``   — its 1-based index at that process;
- ``pre``   — the largest ``ctr`` of an event at ``C`` in its causal past
  (``pre = ctr`` for events at ``C`` themselves; max of empty set is 0);
- ``post``  — the smallest ``ctr`` of an event at ``C`` in its causal future
  (radial events only; min of empty set is ∞).

``pre`` is known the moment the event occurs; ``post`` becomes known when
``C`` acknowledges, via a *control message* ``⟨ctr_m, ctr_C⟩`` on a FIFO
control channel, the receipt of a message the radial process sent at or
after the event.  Until then the timestamp is ``⊥`` (inline).  Comparison is
Theorem 3.1's four-case operator — *not* the standard vector comparison.

FIFO control transport: rather than assuming the host's channels are FIFO,
the algorithm stamps every control message with a per-channel sequence
number and resequences at the receiver, exactly as the paper notes one can
"simulate a FIFO channel for the control messages".  This keeps finalization
semantics correct even when the host piggybacks controls on non-FIFO
application messages.

``finalize_at_termination`` models the end of the computation: any control
message that was emitted but never transported is applied (the information
exists at ``C``; a terminating run can always flush it), after which every
remaining ``∞`` is the event's true, permanent ``post`` value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.clocks.base import (
    INFINITY,
    ClockAlgorithm,
    ControlMessage,
    Timestamp,
    dominance_rows,
)
from repro.core.events import Event, EventId, ProcessId

PostValue = Union[int, float]  # int, or INFINITY


@dataclass(frozen=True, slots=True)
class StarTimestamp(Timestamp):
    """A finalized ``⟨id, ctr, pre, post⟩`` star timestamp.

    ``post`` is ``None`` for events at the central process (where it is not
    defined) and ``INFINITY`` for radial events with no causal successor at
    ``C``.  ``center`` identifies the central process; it is global protocol
    knowledge and is not counted as a timestamp element.
    """

    id: ProcessId
    ctr: int
    pre: int
    post: Optional[PostValue]
    center: ProcessId

    def __post_init__(self) -> None:
        # Theorem 3.1's cases read ``post`` without a None check, so the
        # central/radial boundary is enforced at construction: central
        # events have no ``post`` (it is undefined there, not ∞), radial
        # events always carry one — an integer receive index at C, or
        # INFINITY when no event at C ever hears of this event.
        if self.ctr < 1:
            raise ValueError(f"ctr must be >= 1, got {self.ctr}")
        if self.pre < 0:
            raise ValueError(f"pre must be >= 0, got {self.pre}")
        if self.id == self.center:
            if self.post is not None:
                raise ValueError(
                    f"central event ⟨id={self.id}, ctr={self.ctr}⟩ must "
                    f"have post=None, got {self.post!r}"
                )
            if self.pre != self.ctr:
                raise ValueError(
                    f"central event must have pre == ctr, got "
                    f"pre={self.pre} ctr={self.ctr}"
                )
        else:
            if self.post is None:
                raise ValueError(
                    f"radial event ⟨id={self.id}, ctr={self.ctr}⟩ needs a "
                    f"post value (an index at C, or INFINITY)"
                )
            if self.post != INFINITY and (
                not isinstance(self.post, int) or self.post < 1
            ):
                raise ValueError(
                    f"radial post must be an index >= 1 or INFINITY, "
                    f"got {self.post!r}"
                )

    @property
    def at_center(self) -> bool:
        return self.id == self.center

    def precedes(self, other: "Timestamp") -> bool:
        """Theorem 3.1's comparison: ``e -> f`` iff ``self < other``."""
        if not isinstance(other, StarTimestamp):
            raise TypeError("cannot compare across schemes")
        if self.center != other.center:
            raise ValueError("timestamps come from different star systems")
        e, f = self, other
        if e.at_center and f.at_center:
            return e.pre < f.pre
        if e.at_center and not f.at_center:
            return e.pre <= f.pre
        if not e.at_center and f.id != e.id:
            # __post_init__ guarantees a radial post; ∞ <= pre is False for
            # every finite pre, so an unacknowledged radial event precedes
            # nothing outside its own process — exactly HB on a star
            return e.post <= f.pre  # type: ignore[operator]
        # radial, same process
        return e.ctr < f.ctr

    @classmethod
    def precedes_matrix(cls, timestamps):
        """Word-parallel Theorem 3.1 comparison over all pairs.

        Each of the four cases is a scalar-dominance sweep; same-process
        radial pairs are patched afterwards with the ``ctr`` prefix order.
        """
        if not timestamps:
            return []
        center = timestamps[0].center
        if any(t.center != center for t in timestamps):
            return None  # pairwise raises the mixed-system error
        m = len(timestamps)
        rows = [0] * m
        c_src = [(t.pre, i) for i, t in enumerate(timestamps) if t.at_center]
        c_dst = c_src
        r_dst = [
            (t.pre, j) for j, t in enumerate(timestamps) if not t.at_center
        ]
        r_src = [
            (t.post, i) for i, t in enumerate(timestamps) if not t.at_center
        ]
        all_dst = [(t.pre, j) for j, t in enumerate(timestamps)]
        dominance_rows(c_src, c_dst, rows, strict=True)  # centre → centre
        dominance_rows(c_src, r_dst, rows)               # centre → radial
        dominance_rows(r_src, all_dst, rows)             # radial → other proc
        # same-process radial pairs use ctr order, not post <= pre
        by_proc: Dict[ProcessId, List[int]] = {}
        for i, t in enumerate(timestamps):
            if not t.at_center:
                by_proc.setdefault(t.id, []).append(i)
        for idxs in by_proc.values():
            group = 0
            for i in idxs:
                group |= 1 << i
            prefix = 0
            for i in sorted(idxs, key=lambda i: timestamps[i].ctr):
                rows[i] = (rows[i] & ~group) | prefix
                prefix |= 1 << i
        return rows

    def elements(self) -> Tuple[PostValue, ...]:
        """Stored elements: 4 for radial events, 2 for central ones
        (``pre = ctr`` and ``post`` undefined at the center)."""
        if self.at_center:
            return (self.id, self.ctr)
        return (self.id, self.ctr, self.pre, self.post)  # post never None here


@dataclass(slots=True)
class _Record:
    """Mutable per-event state while the execution is in progress."""

    ctr: int
    pre: int
    post: PostValue = INFINITY  # meaningful for radial events only
    final: bool = False


class StarInlineClock(ClockAlgorithm):
    """The Figure-1 algorithm.

    Parameters
    ----------
    n_processes:
        Total number of processes.
    center:
        The central process id (default 0, matching
        :func:`repro.topology.generators.star`).
    """

    name = "inline-star"
    characterizes_causality = True

    def __init__(self, n_processes: int, center: ProcessId = 0) -> None:
        super().__init__(n_processes)
        if not 0 <= center < n_processes:
            raise ValueError("center out of range")
        self._center = center
        self._ctr = [0] * n_processes
        self._pre = [0] * n_processes
        self._records: Dict[ProcessId, List[_Record]] = {
            p: [] for p in range(n_processes)
        }
        # control-channel sequencing (C -> j), and resequencing state at j
        self._ctrl_seq_out = [0] * n_processes  # next seq to emit, per dst
        self._ctrl_seq_in = [0] * n_processes  # next seq expected, per dst
        self._ctrl_buffer: Dict[ProcessId, Dict[int, Tuple[int, int]]] = {
            p: {} for p in range(n_processes)
        }
        # events with ctr <= finalized_upto[j] have final post values
        self._finalized_upto = [0] * n_processes
        # all emitted controls, and how many were actually delivered, per dst
        self._ctrl_emitted: Dict[ProcessId, List[Tuple[int, int]]] = {
            p: [] for p in range(n_processes)
        }
        self._terminated = False

    # ------------------------------------------------------------------
    @property
    def center(self) -> ProcessId:
        return self._center

    def _is_center(self, p: ProcessId) -> bool:
        return p == self._center

    def _new_event(self, ev: Event) -> _Record:
        p = ev.proc
        self._ctr[p] += 1
        if self._is_center(p):
            rec = _Record(ctr=self._ctr[p], pre=self._ctr[p], final=True)
            self._mark_final(ev.eid)
        else:
            rec = _Record(ctr=self._ctr[p], pre=self._pre[p])
        if ev.index != rec.ctr:
            raise ValueError(
                f"event index {ev.index} does not match local counter {rec.ctr}"
            )
        self._records[p].append(rec)
        return rec

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def on_local(self, ev: Event) -> None:
        self._check_star_event(ev)
        self._new_event(ev)

    def on_send(self, ev: Event) -> Any:
        self._check_star_event(ev)
        rec = self._new_event(ev)
        return (rec.ctr, rec.pre)

    def on_receive(self, ev: Event, payload: Any) -> List[ControlMessage]:
        self._check_star_event(ev)
        ctr_m, _pre_m = payload
        p = ev.proc
        if self._is_center(p):
            rec = self._new_event(ev)
            # acknowledge: tell sender j at which index its message arrived
            j = ev.peer
            assert j is not None
            seq = self._ctrl_seq_out[j]
            self._ctrl_seq_out[j] += 1
            self._ctrl_emitted[j].append((ctr_m, rec.ctr))
            return [
                ControlMessage(
                    src=p, dst=j, payload=(seq, ctr_m, rec.ctr)
                )
            ]
        # radial receive: the message necessarily came from C
        self._pre[p] = max(self._pre[p], ctr_m)
        self._new_event(ev)
        return []

    def _check_star_event(self, ev: Event) -> None:
        if ev.peer is not None:
            if not (self._is_center(ev.proc) or self._is_center(ev.peer)):
                raise ValueError(
                    f"message between two radial processes "
                    f"(p{ev.proc} and p{ev.peer}) violates the star topology"
                )

    # ------------------------------------------------------------------
    # control handling
    # ------------------------------------------------------------------
    def on_control(self, src: ProcessId, dst: ProcessId, payload: Any) -> None:
        """Deliver a control message ``(seq, a, b)`` to radial process *dst*.

        Applies it in sequence-number order (resequencing buffer), per the
        paper's FIFO control channel requirement.  *src* is necessarily the
        central process.
        """
        if src != self._center:
            raise ValueError(f"control message from non-central process p{src}")
        seq, a, b = payload
        buf = self._ctrl_buffer[dst]
        if seq in buf:
            raise ValueError(f"duplicate control message seq {seq} for p{dst}")
        buf[seq] = (a, b)
        while self._ctrl_seq_in[dst] in buf:
            a2, b2 = buf.pop(self._ctrl_seq_in[dst])
            self._ctrl_seq_in[dst] += 1
            self._apply_control(dst, a2, b2)

    def _apply_control(self, j: ProcessId, a: int, b: int) -> None:
        """Set ``post = b`` for events at *j* with ``ctr`` in
        ``(finalized_upto, a]`` — those are exactly the events for which this
        is the first (hence minimal, by FIFO) applicable acknowledgement."""
        upto = self._finalized_upto[j]
        if a <= upto:
            return
        for rec in self._records[j][upto:a]:
            rec.post = min(rec.post, b)
            if not rec.final:
                rec.final = True
                self._mark_final(EventId(j, rec.ctr))
        self._finalized_upto[j] = a

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def timestamp(self, eid: EventId) -> Optional[StarTimestamp]:
        rec = self._record_of(eid)
        if not rec.final:
            return None
        post = None if self._is_center(eid.proc) else rec.post
        return StarTimestamp(
            id=eid.proc, ctr=rec.ctr, pre=rec.pre, post=post, center=self._center
        )

    def provisional_timestamp(self, eid: EventId) -> StarTimestamp:
        """The current (possibly not yet permanent) value — for inspection."""
        rec = self._record_of(eid)
        post = None if self._is_center(eid.proc) else rec.post
        return StarTimestamp(
            id=eid.proc, ctr=rec.ctr, pre=rec.pre, post=post, center=self._center
        )

    def is_final(self, eid: EventId) -> bool:
        return self._record_of(eid).final

    def _record_of(self, eid: EventId) -> _Record:
        recs = self._records[eid.proc]
        if not 1 <= eid.index <= len(recs):
            raise KeyError(f"unknown event {eid}")
        return recs[eid.index - 1]

    # ------------------------------------------------------------------
    def timestamp_bits(self, ts: Timestamp, max_events: int) -> int:
        """Theorem 4.3 accounting for the star (|VC| = 1).

        The ``id`` element costs ``ceil(log2 n)`` bits; every other stored
        element costs ``ceil(log2(K+1))`` bits (a ``post`` of ∞ is encoded
        as 0, which no real receive index uses).
        """
        import math

        assert isinstance(ts, StarTimestamp)
        counter = max(1, math.ceil(math.log2(max_events + 1)))
        ident = max(1, math.ceil(math.log2(self._n)))
        return ident + (ts.n_elements - 1) * counter

    # ------------------------------------------------------------------
    def finalize_at_termination(self) -> List[EventId]:
        """Flush undelivered control information and make all posts permanent."""
        if self._terminated:
            return []
        self._terminated = True
        start = len(self._newly_finalized)
        for j in range(self._n):
            if self._is_center(j):
                continue
            # apply every emitted-but-not-yet-applied control, in order
            applied = self._ctrl_seq_in[j]
            for seq in range(applied, len(self._ctrl_emitted[j])):
                a, b = self._ctrl_emitted[j][seq]
                self._apply_control(j, a, b)
            self._ctrl_seq_in[j] = len(self._ctrl_emitted[j])
            self._ctrl_buffer[j].clear()
            # remaining infinities are true: no causal successor at C
            for rec in self._records[j]:
                if not rec.final:
                    rec.final = True
                    self._mark_final(EventId(j, rec.ctr))
        return list(self._newly_finalized[start:])

"""Standard online vector clocks [Fidge 1989/1991, Mattern 1988].

The ``n``-element vector clock with the *standard vector clock comparison*
(componentwise ``<=`` plus inequality).  This is the paper's main online
baseline: it characterizes happened-before exactly, every timestamp is final
the moment the event occurs, and — per Section 2 — its length cannot be
reduced below ``n`` (integer entries) even when the topology is known.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.clocks.base import (
    ClockAlgorithm,
    ControlMessage,
    Timestamp,
    standard_vector_rows,
    standard_vector_words,
    vector_lt,
)
from repro.core.events import Event, EventId


@dataclass(frozen=True, slots=True)
class VectorTimestamp(Timestamp):
    """An ``n``-element integer vector under the standard comparison."""

    vector: Tuple[int, ...]

    def precedes(self, other: "Timestamp") -> bool:
        if not isinstance(other, VectorTimestamp):
            raise TypeError("cannot compare across schemes")
        return vector_lt(self.vector, other.vector)

    @classmethod
    def precedes_matrix(cls, timestamps):
        return standard_vector_rows([t.vector for t in timestamps])

    @classmethod
    def precedes_matrix_words(cls, timestamps):
        return standard_vector_words([t.vector for t in timestamps])

    def elements(self) -> Tuple[int, ...]:
        return self.vector

    def __getitem__(self, k: int) -> int:
        return self.vector[k]


class VectorClock(ClockAlgorithm):
    """Online Fidge/Mattern vector clock of length ``n``."""

    name = "vector"
    characterizes_causality = True

    def __init__(self, n_processes: int) -> None:
        super().__init__(n_processes)
        self._clock = [[0] * n_processes for _ in range(n_processes)]
        self._ts: Dict[EventId, VectorTimestamp] = {}

    def _record(self, ev: Event) -> None:
        clock = self._clock[ev.proc]
        clock[ev.proc] += 1
        self._ts[ev.eid] = VectorTimestamp(tuple(clock))
        self._mark_final(ev.eid)

    def on_local(self, ev: Event) -> None:
        self._record(ev)

    def on_send(self, ev: Event) -> Any:
        self._record(ev)
        return tuple(self._clock[ev.proc])

    def on_receive(self, ev: Event, payload: Any) -> List[ControlMessage]:
        clock = self._clock[ev.proc]
        for k, v in enumerate(payload):
            if v > clock[k]:
                clock[k] = v
        self._record(ev)
        return []

    def timestamp(self, eid: EventId) -> Optional[VectorTimestamp]:
        return self._ts.get(eid)

    def is_final(self, eid: EventId) -> bool:
        return eid in self._ts

"""Singhal–Kshemkalyani differential vector clocks (related work, §5).

Singhal & Kshemkalyani (1992) reduce the *transmission* cost of vector
clocks: on each channel, a sender piggybacks only the entries that changed
since its previous message on that same channel, as ``(index, value)``
pairs.  Timestamps themselves are still full ``n``-vectors — the technique
compresses messages, not storage — and it requires FIFO channels to be
safe, since a reordered older diff would otherwise be applied over a newer
one.

The FIFO requirement is *fundamental*, not an implementation convenience: a
diff is relative to the previous message on the channel, and the receive
event's timestamp must already dominate the send's — information a not-yet-
arrived earlier diff may carry cannot be resequenced in later.  This
implementation therefore stamps each diff with a per-channel sequence
number and **rejects out-of-order delivery with a clear error** (contrast
with the paper's inline algorithms, whose control messages are pure
metadata and *can* be resequenced).  Use FIFO channels
(``random_execution(..., fifo=True)`` or ``Simulation(...,
fifo_app_channels=True)``) when attaching this clock.

The benchmarks (E11) compare its per-message payload against the inline
schemes: SK compresses well under repeated pairwise traffic but degrades
toward full vectors under scattered communication, while the inline payload
is a fixed ``|VC| + 2`` elements.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.clocks.base import ClockAlgorithm, ControlMessage
from repro.clocks.vector import VectorTimestamp
from repro.core.events import Event, EventId, ProcessId


class SKVectorClock(ClockAlgorithm):
    """Vector clock with Singhal–Kshemkalyani differential transmission.

    Produces exactly the same :class:`VectorTimestamp` values as
    :class:`~repro.clocks.vector.VectorClock`; only the piggybacked payload
    differs: ``(seq, ((index, value), ...))`` with one pair per entry that
    changed since the previous message on the same directed channel.
    """

    name = "vector-sk"
    characterizes_causality = True
    requires_fifo_app = True

    def __init__(self, n_processes: int) -> None:
        super().__init__(n_processes)
        self._clock: List[List[int]] = [
            [0] * n_processes for _ in range(n_processes)
        ]
        self._ts: Dict[EventId, VectorTimestamp] = {}
        # per directed channel: last vector sent, outgoing seq counter
        self._last_sent: Dict[Tuple[ProcessId, ProcessId], List[int]] = {}
        self._seq_out: Dict[Tuple[ProcessId, ProcessId], int] = {}
        # receiver-side in-order check and reconstruction per channel
        self._seq_in: Dict[Tuple[ProcessId, ProcessId], int] = {}
        self._channel_view: Dict[Tuple[ProcessId, ProcessId], List[int]] = {}
        self._total_diff_entries = 0
        self._messages_sent = 0

    # ------------------------------------------------------------------
    def _record(self, ev: Event) -> None:
        clock = self._clock[ev.proc]
        clock[ev.proc] += 1
        self._ts[ev.eid] = VectorTimestamp(tuple(clock))
        self._mark_final(ev.eid)

    def on_local(self, ev: Event) -> None:
        self._record(ev)

    def on_send(self, ev: Event) -> Any:
        self._record(ev)
        src, dst = ev.proc, ev.peer
        assert dst is not None
        key = (src, dst)
        clock = self._clock[src]
        last = self._last_sent.get(key)
        if last is None:
            diff = tuple((i, v) for i, v in enumerate(clock) if v > 0)
        else:
            diff = tuple(
                (i, v) for i, v in enumerate(clock) if v != last[i]
            )
        self._last_sent[key] = list(clock)
        seq = self._seq_out.get(key, 0)
        self._seq_out[key] = seq + 1
        self._total_diff_entries += len(diff)
        self._messages_sent += 1
        return (seq, diff)

    def on_receive(self, ev: Event, payload: Any) -> List[ControlMessage]:
        src, dst = ev.peer, ev.proc
        assert src is not None
        key = (src, dst)
        seq, diff = payload
        expected = self._seq_in.get(key, 0)
        if seq != expected:
            raise ValueError(
                f"SK vector clocks require FIFO channels: got diff #{seq} "
                f"on channel p{src}->p{dst}, expected #{expected}"
            )
        self._seq_in[key] = expected + 1
        view = self._channel_view.setdefault(key, [0] * self._n)
        for i, v in diff:
            view[i] = v  # in-order: overwrite reconstructs the sender vector
        # merge the reconstructed channel view into the local clock
        clock = self._clock[dst]
        for i, v in enumerate(view):
            if v > clock[i]:
                clock[i] = v
        self._record(ev)
        return []

    # ------------------------------------------------------------------
    def timestamp(self, eid: EventId) -> Optional[VectorTimestamp]:
        return self._ts.get(eid)

    def is_final(self, eid: EventId) -> bool:
        return eid in self._ts

    def payload_elements(self, payload: Any) -> int:
        """Cost model: 1 (seq) + 2 per transmitted (index, value) pair."""
        seq, diff = payload
        return 1 + 2 * len(diff)

    @property
    def mean_diff_entries(self) -> float:
        """Average number of (index, value) pairs per message so far."""
        if self._messages_sent == 0:
            return 0.0
        return self._total_diff_entries / self._messages_sent

"""Common interface for timestamping algorithms.

Every scheme in the library — Lamport clocks, standard vector clocks, the
paper's inline star and vertex-cover algorithms, and the related-work
baselines — implements :class:`ClockAlgorithm`.  The interface mirrors how a
real protocol stack would host the algorithm:

- :meth:`ClockAlgorithm.on_local` / :meth:`ClockAlgorithm.on_send` /
  :meth:`ClockAlgorithm.on_receive` are invoked as the corresponding events
  occur.  ``on_send`` returns the *payload* piggybacked on the application
  message; ``on_receive`` gets that payload back.
- ``on_receive`` may return :class:`ControlMessage` objects.  The paper's
  inline algorithms use these to tell a sender at which index its message was
  received (Figure 1's ``⟨ctr_m, ctr_C⟩`` message).  The *transport* of
  control messages is owned by the host (the replayer delivers them
  instantly; the simulator routes them through FIFO control channels with
  real delays, or piggybacks them — see :mod:`repro.sim.runner`).
- :meth:`ClockAlgorithm.timestamp` returns the (possibly still provisional)
  timestamp of an event, or ``None`` for ``⊥``;
  :meth:`ClockAlgorithm.is_final` says whether it is permanent.  Online
  algorithms finalize instantly; the inline algorithms finalize after the
  round trip described in the paper; *offline* finalization at termination is
  modelled by :meth:`ClockAlgorithm.finalize_at_termination`.

Timestamps themselves are small value objects implementing
:class:`Timestamp`: ``a.precedes(b)`` decides ``event(a) -> event(b)`` using
the scheme's own comparison operator (standard vector comparison for vector
clocks, the paper's Theorem 3.1 / 4.1 operators for the inline schemes).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.events import Event, EventId, ProcessId

#: Sentinel used for "no event at the cover process yet / ever" in ``post``
#: fields.  The paper's convention: ``min`` of an empty set is infinity.
INFINITY = float("inf")


class Timestamp(abc.ABC):
    """A permanent timestamp value.

    Subclasses define the scheme-specific comparison.  ``precedes`` must be
    a strict order on the timestamps of a single execution.
    """

    __slots__ = ()

    @abc.abstractmethod
    def precedes(self, other: "Timestamp") -> bool:
        """Whether this timestamp's event happened before *other*'s."""

    @classmethod
    def precedes_matrix(
        cls, timestamps: Sequence["Timestamp"]
    ) -> Optional[List[int]]:
        """Bulk comparison: the full precedes-matrix as packed-int rows.

        Returns ``rows`` with bit ``i`` of ``rows[j]`` set iff
        ``timestamps[i].precedes(timestamps[j])`` — the orientation of the
        oracle's causal-past masks — or ``None`` when the class has no
        word-parallel fast path (callers then fall back to pairwise
        :meth:`precedes` calls).  Overrides must be *exactly* equivalent to
        the pairwise comparison; the test suite cross-checks this on random
        executions for every scheme that provides one.
        """
        return None

    @classmethod
    def precedes_matrix_words(
        cls, timestamps: Sequence["Timestamp"]
    ) -> Optional[Any]:
        """Array-native twin of :meth:`precedes_matrix`.

        Returns the same precedes-matrix as a numpy ``(m, ceil(m/64))``
        ``uint64`` array (rows little-endian-match the packed ints), or
        ``None`` when the scheme has no array fast path *or* numpy is
        unavailable — callers fall back to :meth:`precedes_matrix` and
        then to pairwise comparison.  Overrides must be byte-identical to
        :meth:`precedes_matrix`; the backend-parity suite pins this.
        """
        return None

    @abc.abstractmethod
    def elements(self) -> Tuple[Any, ...]:
        """The scheme's integer (or real) elements, for size accounting."""

    def concurrent_with(self, other: "Timestamp") -> bool:
        """Neither precedes the other (events are distinct by construction)."""
        return not self.precedes(other) and not other.precedes(self)

    @property
    def n_elements(self) -> int:
        """Number of stored elements — the paper's size metric (Thm 4.2)."""
        return len(self.elements())


@dataclass(frozen=True, slots=True)
class ControlMessage:
    """A metadata-only message emitted by a clock algorithm.

    The paper requires control channels to be FIFO per directed pair (the
    application channels need not be).  ``src``/``dst`` are processes;
    ``payload`` is scheme-private.
    """

    src: ProcessId
    dst: ProcessId
    payload: Any


class ClockAlgorithm(abc.ABC):
    """Base class for all timestamping schemes.

    Subclasses must set :attr:`name` and :attr:`characterizes_causality`
    (``True`` when ``precedes`` captures happened-before exactly, ``False``
    for consistent-but-lossy schemes such as Lamport or plausible clocks).
    """

    name: str = "abstract"
    #: whether timestamp comparison is *iff* (characterizes causality)
    characterizes_causality: bool = True
    #: whether the scheme is only safe over per-channel FIFO application
    #: message delivery with no loss, duplication, or reordering (e.g. the
    #: Singhal–Kshemkalyani differential clocks, whose diffs are relative to
    #: the previous message on the channel).  Hosts use this to reject
    #: incompatible configurations at construction time.
    requires_fifo_app: bool = False

    def __init__(self, n_processes: int) -> None:
        if n_processes < 1:
            raise ValueError("need at least one process")
        self._n = n_processes
        self._newly_finalized: List[EventId] = []

    @property
    def n_processes(self) -> int:
        return self._n

    # ------------------------------------------------------------------
    # event hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def on_local(self, ev: Event) -> None:
        """A local event occurred."""

    @abc.abstractmethod
    def on_send(self, ev: Event) -> Any:
        """A send occurred; return the payload piggybacked on the message."""

    @abc.abstractmethod
    def on_receive(self, ev: Event, payload: Any) -> List[ControlMessage]:
        """A receive occurred with the sender's *payload*.

        Returns control messages for the host to transport (possibly empty).
        """

    def on_control(self, src: ProcessId, dst: ProcessId, payload: Any) -> None:
        """A control message from *src* reached *dst*.

        Default: the scheme uses no control messages.
        """
        raise NotImplementedError(f"{self.name} does not use control messages")

    # ------------------------------------------------------------------
    # timestamp queries
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def timestamp(self, eid: EventId) -> Optional[Timestamp]:
        """Current timestamp of *eid*, or ``None`` for ``⊥`` (unknown)."""

    @abc.abstractmethod
    def is_final(self, eid: EventId) -> bool:
        """Whether the timestamp of *eid* is permanent."""

    def finalize_at_termination(self) -> List[EventId]:
        """Declare the execution terminated.

        No further messages will arrive, so every provisional value is now
        permanent (offline finalization).  Returns the events that became
        final by this call.  Default: nothing to do (online schemes).
        """
        return []

    # ------------------------------------------------------------------
    # crash-recovery support
    # ------------------------------------------------------------------
    def checkpoint(self) -> Any:
        """Snapshot of the complete algorithm state.

        The snapshot is self-contained: mutating the live algorithm after
        taking it leaves the snapshot untouched, and :meth:`restore` brings
        an instance back to exactly this state.  Hosts use checkpoints to
        model crash-recovery of the timestamping service — a timestamp that
        was final when the checkpoint was taken must read back identically
        from a restored instance (finality is permanent; see the chaos
        harness in :mod:`repro.faults.chaos`, which asserts this).

        The default deep-copies the instance dictionary, which is correct
        for every pure-Python scheme in the library; subclasses holding
        external resources must override both methods.
        """
        import copy

        return copy.deepcopy(self.__dict__)

    def restore(self, state: Any) -> None:
        """Replace the algorithm state with a :meth:`checkpoint` snapshot.

        The snapshot itself is not consumed — it can be restored again.
        """
        import copy

        state = copy.deepcopy(state)
        self.__dict__.clear()
        self.__dict__.update(state)

    def drain_newly_finalized(self) -> List[EventId]:
        """Events finalized since the last drain (hosts use this to record
        finalization times)."""
        out = self._newly_finalized
        self._newly_finalized = []
        return out

    def _mark_final(self, eid: EventId) -> None:
        self._newly_finalized.append(eid)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def payload_elements(self, payload: Any) -> int:
        """Number of scalar elements the payload adds to an app message."""
        return _count_elements(payload)

    def timestamp_bits(self, ts: Timestamp, max_events: int) -> int:
        """Bits to encode *ts* given ≤ *max_events* events per process.

        Default accounting: ``ceil(log2(K+1))`` bits per counter element and
        ``ceil(log2(n))`` bits for a process-id element; subclasses override
        when their elements have different domains.
        """
        import math

        counter_bits = max(1, math.ceil(math.log2(max_events + 1)))
        return ts.n_elements * counter_bits


def _count_elements(payload: Any) -> int:
    """Count scalar leaves in a nested payload structure."""
    if payload is None:
        return 0
    if isinstance(payload, (int, float)):
        return 1
    if isinstance(payload, (tuple, list)):
        return sum(_count_elements(x) for x in payload)
    if isinstance(payload, dict):
        return sum(1 + _count_elements(v) for v in payload.values())
    raise TypeError(f"unsupported payload component: {type(payload)!r}")


# ----------------------------------------------------------------------
# standard vector comparison, shared by several schemes
# ----------------------------------------------------------------------
def vector_leq(a: Sequence[float], b: Sequence[float]) -> bool:
    """Standard componentwise ``<=`` on equal-length vectors."""
    if len(a) != len(b):
        raise ValueError("vector length mismatch")
    return all(x <= y for x, y in zip(a, b))


def vector_lt(a: Sequence[float], b: Sequence[float]) -> bool:
    """The paper's *standard vector clock comparison*: ``<= and !=``."""
    return vector_leq(a, b) and tuple(a) != tuple(b)


# ----------------------------------------------------------------------
# bitset comparison kernel, shared by the bulk precedes-matrix builders
# ----------------------------------------------------------------------
def dominance_rows(
    sources: Iterable[Tuple[Any, int]],
    targets: Iterable[Tuple[Any, int]],
    rows: List[int],
    strict: bool = False,
) -> None:
    """OR scalar-dominance masks into *rows* (a sort + one linear sweep).

    *sources* and *targets* are ``(key, index)`` pairs; after the call, bit
    ``i`` of ``rows[j]`` is set (additionally to whatever was there) for
    every source ``(k_i, i)`` and target ``(k_j, j)`` with ``k_i <= k_j``
    (``k_i < k_j`` when *strict*).  Keys only need a total order; mixing
    ints with ``INFINITY`` is fine.
    """
    src_tag, dst_tag = (0, 1) if not strict else (1, 0)
    seq = sorted(
        [(key, src_tag, i) for key, i in sources]
        + [(key, dst_tag, j) for key, j in targets]
    )
    running = 0
    for _key, tag, idx in seq:
        if tag == src_tag:
            running |= 1 << idx
        else:
            rows[idx] |= running


def total_order_rows(keys: Sequence[Any]) -> List[int]:
    """Precedes rows for a scheme whose comparison is ``key_i < key_j``.

    Tie-safe: equal keys are mutually unordered.
    """
    m = len(keys)
    rows = [0] * m
    order = sorted(range(m), key=lambda i: keys[i])
    running = 0
    i = 0
    while i < m:
        j = i
        while j < m and keys[order[j]] == keys[order[i]]:
            j += 1
        for t in order[i:j]:
            rows[t] = running
        for t in order[i:j]:
            running |= 1 << t
        i = j
    return rows


def standard_vector_rows(
    vectors: Sequence[Tuple[Any, ...]],
) -> Optional[List[int]]:
    """Precedes rows under the standard vector comparison (``<=`` and ``!=``).

    Per coordinate, a sorted sweep yields the mask of vectors dominated at
    that coordinate; rows are the AND across coordinates minus the
    equal-vector groups.  Returns ``None`` when the vectors do not all share
    one length (the pairwise comparison raises in that case, so callers
    should fall back to it).
    """
    m = len(vectors)
    if m == 0:
        return []
    n = len(vectors[0])
    if any(len(v) != n for v in vectors):
        return None
    all_mask = (1 << m) - 1
    rows = [all_mask] * m
    for k in range(n):
        tmp = [0] * m
        keyed = [(v[k], i) for i, v in enumerate(vectors)]
        dominance_rows(keyed, keyed, tmp)
        for j in range(m):
            rows[j] &= tmp[j]
    groups: Dict[Tuple[Any, ...], int] = {}
    for i, v in enumerate(vectors):
        groups[v] = groups.get(v, 0) | (1 << i)
    for j, v in enumerate(vectors):
        rows[j] &= ~groups[v]
    return rows


def standard_vector_words(
    vectors: Sequence[Tuple[Any, ...]],
) -> Optional[Any]:
    """Array-native :func:`standard_vector_rows` (numpy uint64 matrix).

    Returns ``None`` when numpy is unavailable or the vectors are not
    finite integral numerics (the pure sweep then handles them) — the
    shared implementation behind every scheme's
    :meth:`Timestamp.precedes_matrix_words` override.
    """
    from repro.core.backend import numpy_available

    if not numpy_available():
        return None
    from repro.core import npkernel

    return npkernel.standard_vector_matrix(vectors)


def precedes_matrix_rows(timestamps: Sequence[Timestamp]) -> List[int]:
    """The full precedes-matrix of *timestamps* as packed-int rows.

    Bit ``i`` of ``rows[j]`` is set iff ``timestamps[i]`` precedes
    ``timestamps[j]``.  Uses the scheme's word-parallel
    :meth:`Timestamp.precedes_matrix` when every timestamp shares one class
    and the class provides one; otherwise falls back to pairwise
    :meth:`Timestamp.precedes` calls.
    """
    if not timestamps:
        return []
    cls = type(timestamps[0])
    if all(type(t) is cls for t in timestamps):
        rows = cls.precedes_matrix(timestamps)
        if rows is not None:
            return rows
    out: List[int] = []
    for f in timestamps:
        row = 0
        bit = 1
        for e in timestamps:
            if e is not f and e.precedes(f):
                row |= bit
            bit <<= 1
        out.append(row)
    return out

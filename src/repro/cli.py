"""Command-line interface.

``python -m repro <subcommand>`` exposes the library's main entry points
without writing code:

- ``simulate``     — run a seeded workload on a chosen topology with one or
  more clock algorithms attached; prints validation, sizes, finalization
  statistics; optionally archives the execution trace.
- ``validate``     — load a trace (see :mod:`repro.core.trace`) and check a
  clock algorithm against ground truth on it.
- ``sizes``        — the analytic Theorem 4.2/4.3 size model and crossover.
- ``lower-bound``  — run one of the paper's lower-bound adversaries
  (lemmas 2.1/2.2/2.3/2.4) or the Theorem 4.4 dimension argument.
- ``sync``         — a timed synchronous run with component timestamps.
- ``chaos``        — sweep structured fault scenarios (burst loss,
  duplication, partition+heal, crash-recovery) × clock algorithms with the
  reliable control transport, asserting that finalized timestamps agree
  with happened-before on the surviving execution.
- ``experiments``  — quick headline reproduction of the core claims.
- ``metrics``      — run a workload (or reload ``--trace-out`` files) and
  export the metrics registry as JSON (see :mod:`repro.obs`).

``simulate``, ``validate``, and ``chaos`` accept ``--trace-out PATH`` to
write a structured JSONL trace of the run: a deterministic run header,
span/event records, and metrics-registry snapshots.  Traces carry no
wall-clock state, so reruns — including ``chaos --jobs N`` sweeps for any
``N`` — are byte-identical and diff cleanly; render them with
``python tools/metrics_report.py PATH...``.

All output is plain text; exit status 0 means every check passed.
"""

from __future__ import annotations

import argparse
import contextlib
import random
import signal
import sys
from typing import Dict, Iterator, Optional, Sequence

from repro.analysis import (
    compare_sizes,
    crossover_cover_size,
    summarize_latencies,
)
from repro.analysis.reports import format_table
from repro.baselines import ClusterClock, EncodedClock, PlausibleClock
from repro.clocks import (
    ClockAlgorithm,
    CoverInlineClock,
    LamportClock,
    SKVectorClock,
    StarInlineClock,
    VectorClock,
)
from repro.core import HappenedBeforeOracle
from repro.core.trace import load_execution, save_execution
from repro.clocks.replay import replay
from repro.obs import (
    MetricsRegistry,
    RunTracer,
    deterministic_run_id,
    load_trace,
    registry_from_trace,
    use_registry,
)
from repro.sim import ControlTransport, Simulation, UniformWorkload
from repro.topology import generators
from repro.topology.graph import CommunicationGraph
from repro.topology.vertex_cover import best_cover


def build_topology(name: str, n: int, seed: int) -> CommunicationGraph:
    """Construct one of the named topology families."""
    rng = random.Random(seed)
    table = {
        "star": lambda: generators.star(n),
        "cycle": lambda: generators.cycle(n),
        "clique": lambda: generators.clique(n),
        "path": lambda: generators.path(n),
        "double-star": lambda: generators.double_star(
            max(1, n // 2 - 1), max(1, n - n // 2 - 1)
        ),
        "tree": lambda: generators.random_tree(n, rng),
        "random": lambda: generators.erdos_renyi(n, 0.2, rng),
    }
    if name not in table:
        raise ValueError(f"unknown topology {name!r}")
    return table[name]()


def build_clock(
    name: str, graph: CommunicationGraph
) -> ClockAlgorithm:
    """Construct a clock algorithm by short name."""
    n = graph.n_vertices
    table = {
        "inline": lambda: CoverInlineClock(graph),
        "inline-star": lambda: StarInlineClock(n),
        "vector": lambda: VectorClock(n),
        "vector-sk": lambda: SKVectorClock(n),
        "lamport": lambda: LamportClock(n),
        "encoded": lambda: EncodedClock(n),
        "cluster": lambda: ClusterClock(n),
        "plausible": lambda: PlausibleClock(n, max(1, n // 3)),
    }
    if name not in table:
        raise ValueError(f"unknown clock {name!r}")
    return table[name]()


class NamedClockFactory:
    """Picklable zero-argument clock constructor.

    ``run_chaos(..., jobs=N)`` ships clock factories to worker processes;
    a closure over :func:`build_clock` would not pickle, this does.
    """

    def __init__(self, name: str, graph: CommunicationGraph) -> None:
        self.name = name
        self.graph = graph

    def __call__(self) -> ClockAlgorithm:
        return build_clock(self.name, self.graph)


# ----------------------------------------------------------------------
def _error(message: str) -> int:
    """Report a usage/environment failure on stderr; exit status 1."""
    print(f"repro: error: {message}", file=sys.stderr)
    return 1


#: exit status for a run cut short by SIGINT/SIGTERM (128 + SIGINT)
INTERRUPTED = 130


@contextlib.contextmanager
def _graceful_signals() -> Iterator[None]:
    """Convert SIGTERM into :class:`KeyboardInterrupt` for the duration.

    Long-running commands wrap their main loop in this so a supervisor's
    SIGTERM unwinds through ``finally`` blocks — flushing trace/metrics
    files — exactly like a ^C, instead of dying mid-write.
    """

    def _terminate(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _make_tracer(kind: str, **meta) -> RunTracer:
    """A tracer whose run id is a pure function of the run coordinates."""
    ordered = {k: meta[k] for k in sorted(meta)}
    return RunTracer(
        kind=kind,
        run_id=deterministic_run_id(kind, tuple(ordered.items())),
        meta=ordered,
    )


def cmd_simulate(args: argparse.Namespace) -> int:
    graph = build_topology(args.topology, args.n, args.seed)
    clocks: Dict[str, ClockAlgorithm] = {
        name: build_clock(name, graph) for name in args.clocks
    }
    registry = MetricsRegistry()
    tracer = _make_tracer(
        "simulate",
        topology=args.topology,
        n=graph.n_vertices,
        events=args.events,
        seed=args.seed,
        clocks=list(args.clocks),
        transport=args.transport,
    )
    with use_registry(registry):
        sim = Simulation(
            graph,
            seed=args.seed,
            clocks=clocks,
            control_transport=ControlTransport(args.transport),
            fifo_app_channels=args.fifo,
            metrics=registry,
            online_oracle=args.online_oracle,
            event_store=args.store,
        )
        result = sim.run(
            UniformWorkload(
                events_per_process=args.events, p_local=args.p_local
            )
        )
        ex = result.execution
        print(
            f"topology={args.topology} n={graph.n_vertices} "
            f"events={ex.n_events} messages={result.app_messages} "
            f"duration={result.duration:.2f}"
        )
        cover = best_cover(graph)
        print(f"vertex cover used by 'inline': size {len(cover)} -> "
              f"bound {2 * len(cover) + 2} elements")
        # freezes the streamed oracle under --online-oracle (no causal-past
        # recompute); otherwise builds the batch oracle from the execution
        oracle = result.hb_oracle()
        if result.online_oracle is not None:
            inc = result.online_oracle
            print(
                f"online oracle: {inc.n_events} appends "
                f"({registry.counter('oracle.append_words').value} row words), "
                f"query cache "
                f"{registry.counter('oracle.query_cache_hit').value} hits / "
                f"{registry.counter('oracle.query_cache_miss').value} misses"
            )
        rows = []
        ok = True
        for name, asg in result.assignments.items():
            report = asg.validate(oracle)
            expected = (
                report.characterizes
                if asg.algorithm.characterizes_causality
                else report.is_consistent
            )
            ok &= expected
            lat = summarize_latencies(result, name)
            rows.append(
                [
                    name,
                    report.is_consistent,
                    report.characterizes,
                    asg.max_elements(),
                    round(lat.finalized_fraction, 3),
                    round(lat.mean, 3),
                ]
            )
            tracer.event(
                "clock-validated",
                clock=name,
                consistent=report.is_consistent,
                exact=report.characterizes,
                max_elements=asg.max_elements(),
            )
    print(
        format_table(
            ["clock", "consistent", "exact", "max elements",
             "finalized frac", "mean latency"],
            rows,
        )
    )
    if args.save_trace:
        try:
            save_execution(ex, args.save_trace)
        except OSError as exc:
            return _error(f"cannot write trace {args.save_trace}: {exc}")
        print(f"trace written to {args.save_trace}")
    if args.trace_out:
        tracer.snapshot_metrics("run", registry)
        try:
            tracer.write(args.trace_out)
        except OSError as exc:
            return _error(f"cannot write trace {args.trace_out}: {exc}")
        print(f"structured trace written to {args.trace_out}")
    return 0 if ok else 1


def cmd_validate(args: argparse.Namespace) -> int:
    try:
        execution = load_execution(args.trace)
    except (OSError, ValueError, KeyError) as exc:
        return _error(f"cannot load trace {args.trace}: {exc}")
    graph = execution.graph
    if graph is None:
        graph = generators.clique(execution.n_processes)
    clocks = [build_clock(name, graph) for name in args.clocks]
    registry = MetricsRegistry()
    tracer = _make_tracer(
        "validate",
        trace=str(args.trace),
        n=execution.n_processes,
        events=execution.n_events,
        clocks=list(args.clocks),
    )
    ok = True
    with use_registry(registry):
        oracle = HappenedBeforeOracle(execution)
        for asg in replay(execution, clocks):
            report = asg.validate(oracle)
            good = (
                report.characterizes
                if asg.algorithm.characterizes_causality
                else report.is_consistent
            )
            ok &= good
            status = "OK" if good else "FAIL"
            print(
                f"{asg.algorithm.name}: {status} "
                f"(consistent={report.is_consistent}, "
                f"exact={report.characterizes}, "
                f"max elements={asg.max_elements()})"
            )
            tracer.event(
                "clock-validated",
                clock=asg.algorithm.name,
                ok=good,
                consistent=report.is_consistent,
                exact=report.characterizes,
                max_elements=asg.max_elements(),
            )
    if args.trace_out:
        tracer.snapshot_metrics("run", registry)
        try:
            tracer.write(args.trace_out)
        except OSError as exc:
            return _error(f"cannot write trace {args.trace_out}: {exc}")
        print(f"structured trace written to {args.trace_out}")
    return 0 if ok else 1


def cmd_sizes(args: argparse.Namespace) -> int:
    if args.n < 1:
        return _error(f"--n must be >= 1, got {args.n}")
    if args.k < 1:
        return _error(f"--k must be >= 1, got {args.k}")
    if not 1 <= args.cover <= args.n:
        return _error(
            f"--cover must be in [1, n={args.n}], got {args.cover} "
            f"(a vertex cover cannot be larger than the graph)"
        )
    row = compare_sizes(args.n, args.k, args.cover)
    print(
        format_table(
            ["n", "K", "|VC|", "inline elements", "vector elements",
             "inline bits", "vector bits", "inline wins"],
            [
                [
                    row.n_processes,
                    row.max_events,
                    row.cover_size,
                    row.inline_elements,
                    row.vector_elements,
                    row.inline_bits,
                    row.vector_bits,
                    row.inline_smaller,
                ]
            ],
        )
    )
    crossover = crossover_cover_size(args.n, args.k)
    print(
        f"largest winning cover size for n={args.n}, K={args.k}: "
        f"{crossover} (paper: n/2 - 1 = {args.n / 2 - 1:.1f})"
    )
    return 0


def cmd_lower_bound(args: argparse.Namespace) -> int:
    from repro.lowerbounds import (
        FoldedVectorScheme,
        ProjectedVectorScheme,
        execution_dimension_exceeds_2,
        flooding_adversary,
        offline_two_element_assignment,
        star_adversary_integer,
        star_adversary_real,
        theorem_4_4_witness,
    )

    n = args.n
    if args.lemma == "2.1":
        result = star_adversary_real(
            lambda nn: ProjectedVectorScheme(nn, max(1, nn - 2), seed=0), n
        )
    elif args.lemma == "2.2":
        result = star_adversary_integer(
            lambda nn: FoldedVectorScheme(nn, max(1, nn - 1)), n
        )
    elif args.lemma == "2.3":
        graph = generators.cycle(n)
        result = flooding_adversary(
            lambda nn: FoldedVectorScheme(nn, max(1, nn - 1)), graph
        )
    elif args.lemma == "2.4":
        graph = generators.star(n)
        result = flooding_adversary(
            lambda nn: FoldedVectorScheme(nn, max(1, nn - 2)),
            graph,
            restrict_to_x=True,
        )
    else:  # 4.4
        witness = theorem_4_4_witness()
        exceeds = execution_dimension_exceeds_2(witness)
        assignment = offline_two_element_assignment(witness)
        print(f"Theorem 4.4 witness: {witness.n_events} events on a "
              f"4-process star")
        print(f"order dimension > 2: {exceeds}")
        print(f"2-element offline assignment exists: {assignment is not None}")
        return 0 if exceeds and assignment is None else 1

    print(
        f"Lemma {args.lemma} adversary (n={n}, scheme length "
        f"{result.vector_length}): refuted={result.refuted}"
    )
    if result.violation:
        print(f"counterexample: {result.violation.describe()}")
    return 0 if result.refuted else 1


def cmd_sync(args: argparse.Namespace) -> int:
    """Run a timed synchronous computation with component timestamps."""
    from repro.sync import ComponentSyncClock, SyncOracle, best_decomposition
    from repro.sync.timed import simulate_sync

    graph = build_topology(args.topology, args.n, args.seed)
    dec = best_decomposition(graph)
    res = simulate_sync(
        graph,
        actions_per_process=args.events,
        seed=args.seed,
        decomposition=dec,
    )
    clock = ComponentSyncClock(dec)
    clock.replay(res.execution)
    clock.finalize_at_termination()
    oracle = SyncOracle(res.execution)
    mismatches = sum(
        1
        for e in res.execution.events
        for f in res.execution.events
        if e.uid != f.uid
        and clock.timestamp(e).precedes(clock.timestamp(f))
        != oracle.happened_before(e, f)
    )
    lats = sorted(res.finalization_latencies().values())
    mean_lat = sum(lats) / len(lats) if lats else 0.0
    print(
        f"synchronous run: {res.execution.n_events} events, "
        f"d={dec.d} component(s), duration={res.duration:.1f}"
    )
    print(f"timestamp elements: max {clock.max_elements()} "
          f"(bound 2d+4 = {2 * dec.d + 4}; vector clock would need "
          f"{graph.n_vertices})")
    print(f"causality mismatches vs oracle: {mismatches}")
    print(f"finalized during run: "
          f"{res.fraction_finalized_during_run():.1%}, "
          f"mean latency {mean_lat:.2f}")
    return 0 if mismatches == 0 else 1


def _parse_hostport(raw: str) -> "tuple[str, int]":
    host, _, port = raw.rpartition(":")
    return host or "127.0.0.1", int(port)


def _announce_listen(addr: "tuple[str, int]") -> None:
    # printed (and flushed) before any cell runs, so scripts can scrape
    # the bound port and launch `repro fabric-worker --connect`
    print(f"fabric: serving work queue on {addr[0]}:{addr[1]}", flush=True)


def _check_fabric_args(args: argparse.Namespace) -> Optional[str]:
    if args.fabric is None:
        if args.resume:
            return "--resume requires --fabric DIR"
        if args.fabric_listen:
            return "--fabric-listen requires --fabric DIR"
        if args.workers != 1:
            return "--workers requires --fabric DIR (use --jobs otherwise)"
    return None


def _print_chaos_tail(args: argparse.Namespace, report, retry,
                      n: int) -> int:
    """The common human-readable sweep summary (serial and fabric paths)."""
    from repro.faults import ROW_HEADER

    transport = (
        "fire-and-forget"
        if args.unreliable
        else f"reliable (timeout={retry.timeout}, backoff={retry.backoff}, "
        f"max_retries={retry.max_retries})"
    )
    print(
        f"chaos sweep: topology={args.topology} n={n} "
        f"events={args.events} seed={args.seed} control transport: {transport}"
    )
    if report.skipped:
        print(f"skipped FIFO-requiring clocks: {', '.join(report.skipped)}")
    print(format_table(ROW_HEADER, report.rows()))
    failures = report.failures()
    if failures:
        for cell in failures:
            kind = (
                "causality" if not cell.causality_ok else "crash checkpoint"
            )
            print(f"FAIL: {cell.scenario} × {cell.clock} ({kind} invariant)")
    else:
        print("all scenario × clock invariants hold")
    return 0 if report.ok else 1


def _cmd_chaos_fabric(args: argparse.Namespace, graph, factories,
                      retry) -> int:
    """Chaos sweep through the resumable work-queue fabric.

    One fabric cell per scenario; the compacted trace and the merged
    report are byte-identical to the serial ``repro chaos`` run of the
    same coordinates, whatever the placement or interruption history.
    """
    from repro.fabric import (
        CellFailed,
        FabricInterrupted,
        ResultStore,
        StreamingTraceWriter,
        cell_key,
        compact_fragments,
        run_fabric,
    )
    from repro.fabric.drivers import chaos_cell_specs, merge_chaos_results

    skipped = sorted(
        name for name, factory in factories.items()
        if factory().requires_fifo_app
    )
    specs = chaos_cell_specs(
        args.topology,
        graph.n_vertices,
        args.events,
        args.seed,
        clocks=list(args.clocks),
        quick=bool(args.quick),
        reliable=not args.unreliable,
        retry_timeout=retry.timeout,
        retry_max=retry.max_retries,
    )
    keys = [cell_key(spec) for spec in specs]
    store = ResultStore(args.fabric)
    listen = (
        _parse_hostport(args.fabric_listen) if args.fabric_listen else None
    )
    interrupted: Optional[FabricInterrupted] = None
    try:
        with _graceful_signals():
            fabric_report = run_fabric(
                specs,
                store,
                workers=args.workers,
                resume=args.resume,
                listen=listen,
                listen_ready=_announce_listen,
            )
    except FabricInterrupted as exc:
        interrupted = exc
    except (CellFailed, ValueError, OSError) as exc:
        return _error(str(exc))

    report = None
    if interrupted is None:
        report = merge_chaos_results(fabric_report.iter_results(), skipped)
    if args.trace_out:
        # identical header (run id included) to the serial --trace-out:
        # the meta excludes every fabric/placement flag
        meta = {
            "clocks": list(args.clocks),
            "events": args.events,
            "n": graph.n_vertices,
            "quick": bool(args.quick),
            "reliable": not args.unreliable,
            "seed": args.seed,
            "topology": args.topology,
        }
        try:
            with StreamingTraceWriter(
                args.trace_out,
                kind="chaos",
                run_id=deterministic_run_id("chaos", tuple(meta.items())),
                meta=meta,
            ) as writer:
                if skipped:
                    writer.event("skipped-clocks", clocks=skipped)
                compact_fragments(
                    writer, store, keys,
                    skip_missing=interrupted is not None,
                )
                if report is not None:
                    writer.event(
                        "sweep-summary",
                        cells=len(report.cells),
                        failures=len(report.failures()),
                        ok=report.ok,
                    )
        except OSError as exc:
            return _error(f"cannot write trace {args.trace_out}: {exc}")
        if interrupted is not None:
            print(f"partial trace written to {args.trace_out}",
                  file=sys.stderr)
    if interrupted is not None:
        print(
            f"repro: error: chaos sweep interrupted "
            f"({interrupted.done} cell(s) completed this run, "
            f"{interrupted.remaining} remaining; rerun with --fabric "
            f"{args.fabric} --resume)",
            file=sys.stderr,
        )
        return INTERRUPTED
    status = _print_chaos_tail(args, report, retry, graph.n_vertices)
    if args.trace_out:
        print(f"structured trace written to {args.trace_out}")
    print(f"fabric: store {store.root} holds {len(store)} cell(s), "
          f"digest {store.digest(keys)[:16]}")
    return status


def cmd_chaos(args: argparse.Namespace) -> int:
    """Fault-scenario sweep with invariant checking (experiment E16)."""
    from repro.faults import default_scenarios, run_chaos
    from repro.sim.network import RetryPolicy

    graph = build_topology(args.topology, args.n, args.seed)
    factories = {
        name: NamedClockFactory(name, graph) for name in args.clocks
    }
    retry = RetryPolicy(
        timeout=args.retry_timeout, max_retries=args.max_retries
    )
    bad = _check_fabric_args(args)
    if bad is not None:
        return _error(bad)
    if args.fabric is not None:
        return _cmd_chaos_fabric(args, graph, factories, retry)
    tracer = None
    if args.trace_out:
        # run id and meta deliberately exclude --jobs: a parallel sweep's
        # trace must be byte-identical to the serial one
        tracer = _make_tracer(
            "chaos",
            topology=args.topology,
            n=graph.n_vertices,
            events=args.events,
            seed=args.seed,
            clocks=list(args.clocks),
            quick=bool(args.quick),
            reliable=not args.unreliable,
        )
    try:
        with _graceful_signals():
            report = run_chaos(
                graph,
                factories,
                scenarios=default_scenarios(graph.n_vertices, quick=args.quick),
                events_per_process=args.events,
                seed=args.seed,
                reliable=not args.unreliable,
                retry=retry,
                jobs=args.jobs,
                tracer=tracer,
            )
    except KeyboardInterrupt:
        # flush whatever the sweep recorded before the signal, then report
        # the interruption as a failure (partial sweeps prove nothing)
        if tracer is not None:
            try:
                tracer.write(args.trace_out)
                print(f"partial trace written to {args.trace_out}",
                      file=sys.stderr)
            except OSError as exc:
                print(f"repro: error: cannot write trace "
                      f"{args.trace_out}: {exc}", file=sys.stderr)
        print("repro: error: chaos sweep interrupted", file=sys.stderr)
        return INTERRUPTED
    status = _print_chaos_tail(args, report, retry, graph.n_vertices)
    if tracer is not None:
        try:
            tracer.write(args.trace_out)
        except OSError as exc:
            return _error(f"cannot write trace {args.trace_out}: {exc}")
        print(f"structured trace written to {args.trace_out}")
    return status


def _build_live_faults(loss: float, duplicate: float):
    """Fault model for the live runtime from the CLI loss/dup knobs.

    ``--loss r`` becomes a Gilbert–Elliott channel whose stationary mean
    loss rate is exactly *r* (short bursts: enter with probability ``r``,
    exit with ``1 - r``); ``--duplicate r`` duplicates that fraction of
    frames.  Returns ``None`` when both are zero.
    """
    from repro.faults.models import (
        CompositeFault,
        DuplicationFault,
        GilbertElliottLoss,
    )

    models = []
    if loss > 0:
        models.append(
            GilbertElliottLoss(p_enter_burst=loss, p_exit_burst=1.0 - loss)
        )
    if duplicate > 0:
        models.append(DuplicationFault(rate=duplicate))
    if not models:
        return None
    return models[0] if len(models) == 1 else CompositeFault(models)


def cmd_kv_live(args: argparse.Namespace) -> int:
    """Boot a loopback cluster, load it, crash it, audit it.

    The live counterpart of the Figure-4 store experiment: real sockets,
    real wall-clock latencies, optional seeded loss/duplication and a
    scripted mid-run sequencer crash-and-restart.  Exit status 0 iff every
    session completed, the causal-read audit passed, no acknowledged write
    was lost, and crash checkpoints were permanent.
    """
    import asyncio
    import json

    from repro.applications.causal_kv import StoreConfig
    from repro.net import CrashPlan, TransportPolicy, run_live_store

    try:
        config = StoreConfig(
            n_sequencers=args.sequencers,
            n_servers=args.servers,
            n_clients=args.clients,
            n_keys=args.keys,
            ops_per_client=args.ops,
            write_fraction=args.write_fraction,
            seed=args.seed,
        )
        fault_model = _build_live_faults(args.loss, args.duplicate)
        policy = TransportPolicy(
            request_timeout=args.timeout,
            max_retries=args.max_retries,
            seed=args.seed,
        )
    except ValueError as exc:
        return _error(str(exc))
    crash_plan = None
    if args.kill_sequencer is not None:
        if not 0 <= args.kill_sequencer < args.sequencers:
            return _error(
                f"--kill-sequencer must name a sequencer index in "
                f"[0, {args.sequencers}), got {args.kill_sequencer}"
            )
        total = args.clients * args.ops
        after = args.kill_after_ops
        if after is None:
            after = max(1, total // 4)
        crash_plan = CrashPlan(
            pid=args.kill_sequencer, after_ops=after, downtime=args.downtime
        )
    clock_name = None if args.clock == "none" else args.clock
    registry = MetricsRegistry()
    tracer = _make_tracer(
        "kv-live",
        sequencers=args.sequencers,
        servers=args.servers,
        clients=args.clients,
        ops=args.ops,
        seed=args.seed,
        clock=args.clock,
        loss=args.loss,
        duplicate=args.duplicate,
        kill=args.kill_sequencer,
    )

    async def _run():
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        runner = asyncio.ensure_future(
            run_live_store(
                config,
                clock_name=clock_name,
                fault_model=fault_model,
                crash_plan=crash_plan,
                policy=policy,
                registry=registry,
                compare_sim=args.compare_sim,
                stopping=stop.is_set,
            )
        )
        waiter = asyncio.ensure_future(stop.wait())
        done, _pending = await asyncio.wait(
            {runner, waiter}, return_when=asyncio.FIRST_COMPLETED
        )
        if runner in done:
            waiter.cancel()
            return runner.result(), False
        runner.cancel()
        await asyncio.gather(runner, return_exceptions=True)
        return None, True

    try:
        report, interrupted = asyncio.run(_run())
    except ValueError as exc:
        return _error(str(exc))

    def _flush_trace() -> Optional[int]:
        if not args.trace_out:
            return None
        tracer.snapshot_metrics("run", registry)
        try:
            tracer.write(args.trace_out)
        except OSError as exc:
            return _error(f"cannot write trace {args.trace_out}: {exc}")
        print(f"structured trace written to {args.trace_out}")
        return None

    if interrupted:
        tracer.event("interrupted")
        rc = _flush_trace()
        if rc is not None:
            return rc
        print("repro: error: kv-live interrupted", file=sys.stderr)
        return INTERRUPTED
    tracer.event("live-report", **{
        k: v for k, v in report.as_dict().items()
        if k not in ("latency_cdf", "counters", "sim_prediction")
    })
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
    rc = _flush_trace()
    if rc is not None:
        return rc
    return 0 if report.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run one store node in this OS process (clockless).

    Peers are found through a shared JSON address book; each node registers
    its ephemeral port there on startup.  Sequencer and server nodes serve
    until SIGINT/SIGTERM (a clean stop exits 0); a client node runs its
    closed-loop session to completion and exits.  The in-process clock seam
    needs shared algorithm state, so multi-process deployments run without
    a timestamping scheme attached — use ``kv-live`` to measure clocks.
    """
    import asyncio

    from repro.applications.causal_kv import StoreConfig
    from repro.net import (
        ClusterSpec,
        FileAddressBook,
        TransportPolicy,
        make_node,
    )

    try:
        config = StoreConfig(
            n_sequencers=args.sequencers,
            n_servers=args.servers,
            n_clients=args.clients,
            n_keys=args.keys,
            ops_per_client=args.ops,
            write_fraction=args.write_fraction,
            seed=args.seed,
        )
        spec = ClusterSpec(config)
        policy = TransportPolicy(
            request_timeout=args.timeout, seed=args.seed
        )
    except ValueError as exc:
        return _error(str(exc))
    if not 0 <= args.pid < spec.n_processes:
        return _error(
            f"--pid must be in [0, {spec.n_processes}) for this cluster, "
            f"got {args.pid}"
        )

    async def _run() -> int:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        book = FileAddressBook(args.address_book)
        node = make_node(args.pid, spec, book, policy)
        host, port = await node.start()
        print(
            f"repro serve: {node.role} p{args.pid} listening on "
            f"{host}:{port} (book: {args.address_book})",
            flush=True,
        )
        try:
            if node.role == "client":
                session = asyncio.ensure_future(node.run_session())
                waiter = asyncio.ensure_future(stop.wait())
                done, _pending = await asyncio.wait(
                    {session, waiter}, return_when=asyncio.FIRST_COMPLETED
                )
                if session in done:
                    waiter.cancel()
                    session.result()
                    ops = len(node.operations)
                    lat = sorted(node.latencies_ms)
                    p50 = lat[len(lat) // 2] if lat else 0.0
                    print(
                        f"repro serve: client p{args.pid} completed "
                        f"{ops} ops (p50 {p50:.1f} ms)"
                    )
                    return 0
                session.cancel()
                await asyncio.gather(session, return_exceptions=True)
                print("repro: error: client session interrupted",
                      file=sys.stderr)
                return INTERRUPTED
            await stop.wait()
            print(f"repro serve: p{args.pid} shutting down")
            return 0
        finally:
            await node.stop()

    return asyncio.run(_run())


def _star_size_row(n: int):
    """One row of the ``repro experiments`` size table (sweep-cell worker).

    Module-level so ``--jobs N`` can run the sizes in parallel processes;
    the seeded execution makes the row deterministic either way.
    """
    from repro.clocks import replay
    from repro.core.random_executions import random_execution

    graph = generators.star(n)
    ex = random_execution(
        graph, random.Random(1), steps=4 * n, deliver_all=True
    )
    inline, vector = replay(
        ex, [CoverInlineClock(graph, (0,)), VectorClock(n)]
    )
    row = [n, inline.max_elements(), vector.max_elements(),
           inline.validate().characterizes]
    return row, inline.max_elements() == 4 and vector.max_elements() == n


def cmd_metrics(args: argparse.Namespace) -> int:
    """Export a metrics registry as JSON.

    Two modes: ``--from-trace`` folds the metrics snapshots of one or more
    structured trace files (``--trace-out`` output) into a single registry;
    otherwise a seeded simulation is run (same knobs as ``simulate``) and
    its registry — simulator instrumentation plus validation counters — is
    exported.
    """
    import json

    registry = MetricsRegistry()
    if args.from_trace:
        for path in args.from_trace:
            try:
                registry.merge(registry_from_trace(load_trace(path)))
            except (OSError, ValueError, KeyError) as exc:
                return _error(f"cannot load trace {path}: {exc}")
    else:
        graph = build_topology(args.topology, args.n, args.seed)
        clocks = {name: build_clock(name, graph) for name in args.clocks}
        with use_registry(registry):
            sim = Simulation(
                graph, seed=args.seed, clocks=clocks, metrics=registry
            )
            result = sim.run(
                UniformWorkload(events_per_process=args.events)
            )
            oracle = HappenedBeforeOracle(result.execution)
            for asg in result.assignments.values():
                asg.validate(oracle)
    payload = registry.to_json(indent=2)
    if args.output:
        try:
            with open(args.output, "w") as fh:
                fh.write(payload + "\n")
        except OSError as exc:
            return _error(f"cannot write metrics {args.output}: {exc}")
        print(f"metrics written to {args.output}")
    else:
        print(payload)
    return 0


def cmd_conformance(args: argparse.Namespace) -> int:
    """Differential conformance fuzzing across all clock schemes/oracles.

    Optionally replays a pinned-case corpus first, then runs the seeded
    fuzz campaign.  Exit status 0 iff no corpus case and no fuzz trial
    surfaced a mismatch.  ``--report`` writes every mismatch (plus a
    summary record) as a structured JSONL trace via :mod:`repro.obs`.
    """
    from repro.conformance import (
        case_from_mismatch,
        fuzz,
        load_corpus,
        replay_case,
        save_case,
    )

    if args.trials < 0:
        return _error(f"--trials must be >= 0, got {args.trials}")
    if args.backend in ("numpy", "old-vs-new"):
        from repro.core.backend import numpy_available

        if not numpy_available():
            return _error(
                f"--backend {args.backend} requires numpy>=2.0 "
                "(pip install numpy, or the [fast] extra)"
            )
    tracer = _make_tracer(
        "conformance",
        trials=args.trials,
        seed=args.seed,
        topologies=list(args.topology),
        steps=args.steps,
        backend=args.backend,
    )
    corpus_mismatches = 0
    if args.corpus:
        try:
            cases = load_corpus(args.corpus)
        except (OSError, ValueError, KeyError) as exc:
            return _error(f"cannot load corpus {args.corpus}: {exc}")
        for case in cases:
            for mm in replay_case(case):
                corpus_mismatches += 1
                tracer.event("corpus-mismatch", case=case.name,
                             **mm.to_record())
                print(f"corpus FAIL {case.name} [{mm.invariant}] "
                      f"{mm.scheme}: {mm.detail}", file=sys.stderr)
        print(f"corpus: {len(cases)} pinned case(s), "
              f"{corpus_mismatches} mismatch(es)")
    bad = _check_fabric_args(args)
    if bad is not None:
        return _error(bad)
    if args.fabric is not None:
        # shard the campaign into trial-range cells; absolute trial
        # indices seed each trial, so the merged report — and the JSONL
        # --report — is exactly the serial campaign's
        from repro.fabric import (
            CellFailed,
            FabricInterrupted,
            ResultStore,
            run_fabric,
        )
        from repro.fabric.drivers import (
            conformance_chunk_specs,
            merge_conformance_results,
        )

        specs = conformance_chunk_specs(
            args.trials,
            args.seed,
            list(args.topology),
            args.steps,
            args.backend,
            shrink=not args.no_shrink,
            chunk_size=args.chunk_size,
        )
        store = ResultStore(args.fabric)
        listen = (
            _parse_hostport(args.fabric_listen)
            if args.fabric_listen else None
        )
        try:
            with _graceful_signals():
                fabric_report = run_fabric(
                    specs,
                    store,
                    workers=args.workers,
                    resume=args.resume,
                    listen=listen,
                    listen_ready=_announce_listen,
                )
        except FabricInterrupted as exc:
            print(
                f"repro: error: conformance campaign interrupted "
                f"({exc.done} chunk(s) completed this run, {exc.remaining} "
                f"remaining; rerun with --fabric {args.fabric} --resume)",
                file=sys.stderr,
            )
            return INTERRUPTED
        except (CellFailed, ValueError, OSError) as exc:
            return _error(str(exc))
        report = merge_conformance_results(fabric_report.iter_results())
        for mm in report.mismatches:
            tracer.event("mismatch", **mm.to_record())
        tracer.event(
            "summary",
            trials=report.trials,
            events=report.events_checked,
            checks=dict(sorted(report.checks.items())),
            mismatches=len(report.mismatches),
        )
    else:
        report = fuzz(
            trials=args.trials,
            seed=args.seed,
            topologies=tuple(args.topology),
            max_steps=args.steps,
            tracer=tracer,
            shrink=not args.no_shrink,
            backend=args.backend,
        )
    print(
        f"conformance: {report.trials} trial(s), seed {args.seed}, "
        f"topologies {'/'.join(args.topology)}, "
        f"{report.events_checked} events checked"
    )
    print(format_table(
        ["invariant", "checks"],
        [[inv, count] for inv, count in sorted(report.checks.items())],
    ))
    for mm in report.mismatches:
        print(f"MISMATCH [{mm.invariant}] {mm.scheme}: {mm.detail} "
              f"(ops={len(mm.ops)}, context={dict(mm.context)})",
              file=sys.stderr)
    if args.save_failing and report.mismatches:
        for i, mm in enumerate(report.mismatches):
            case = case_from_mismatch(
                f"fuzz-{args.seed}-{mm.context.get('trial', i)}-{i}", mm
            )
            path = save_case(case, args.save_failing)
            print(f"shrunken case written to {path}", file=sys.stderr)
    if args.report:
        try:
            tracer.write(args.report)
        except OSError as exc:
            return _error(f"cannot write report {args.report}: {exc}")
        print(f"mismatch report written to {args.report}")
    total = corpus_mismatches + len(report.mismatches)
    print("conformance: OK" if total == 0
          else f"conformance: {total} mismatch(es)")
    return 0 if total == 0 else 1


def cmd_experiments(args: argparse.Namespace) -> int:
    """Quick headline reproduction: one table per core claim."""
    from repro.bench import parallel_map
    from repro.lowerbounds import (
        FoldedVectorScheme,
        execution_dimension_exceeds_2,
        star_adversary_integer,
        theorem_4_4_witness,
    )

    ok = True

    # --- sizes (Theorem 4.2 / Section 3)
    rows = []
    for row, row_ok in parallel_map(
        _star_size_row, (8, 16, 32), jobs=args.jobs
    ):
        rows.append(row)
        ok &= row_ok
    print("Theorem 4.2 / Section 3 — star timestamps (constant 4 vs n):")
    print(format_table(["n", "inline elements", "vector elements", "exact"],
                       rows))

    # --- Lemma 2.2 (online lower bound)
    result = star_adversary_integer(
        lambda nn: FoldedVectorScheme(nn, nn - 1), args.n
    )
    print(f"\nLemma 2.2 — integer online vectors of length n-1 refuted: "
          f"{result.refuted}")
    ok &= result.refuted

    # --- Theorem 4.4 (offline lower bound)
    exceeds = execution_dimension_exceeds_2(theorem_4_4_witness())
    print(f"Theorem 4.4 — witness execution has dimension > 2: {exceeds}")
    ok &= exceeds

    print("\n(full suite: pytest benchmarks/ --benchmark-only -s;"
          " details in EXPERIMENTS.md)")
    return 0 if ok else 1


def cmd_fabric_worker(args: argparse.Namespace) -> int:
    """Attach to a fabric coordinator and execute leased cells.

    The counterpart of ``--fabric-listen`` on ``repro chaos`` /
    ``repro conformance``: this process leases cells over TCP, runs them
    through the same work-kind registry, and ships results home.  Exits
    0 when the coordinator's queue drains or the coordinator goes away.
    """
    from repro.fabric.netqueue import run_remote_worker

    try:
        host, port = _parse_hostport(args.connect)
    except ValueError:
        return _error(f"--connect expects HOST:PORT, got {args.connect!r}")
    try:
        with _graceful_signals():
            completed = run_remote_worker(
                host,
                port,
                name=args.name,
                heartbeat_interval=args.heartbeat_interval,
                max_cells=args.max_cells,
            )
    except KeyboardInterrupt:
        print("repro: error: fabric worker interrupted", file=sys.stderr)
        return INTERRUPTED
    print(f"fabric worker: completed {completed} cell(s)")
    return 0


# ----------------------------------------------------------------------
def _add_fabric_args(p: argparse.ArgumentParser) -> None:
    """The work-queue fabric flags shared by sweep commands."""
    g = p.add_argument_group("experiment fabric")
    g.add_argument("--fabric", metavar="DIR", default=None,
                   help="run through the resumable work-queue fabric, "
                   "storing per-cell results in DIR (byte-identical to "
                   "the serial run for any placement)")
    g.add_argument("--resume", action="store_true",
                   help="reuse cells already completed in the --fabric "
                   "store instead of refusing to overwrite them")
    g.add_argument("--workers", type=int, default=1,
                   help="local fabric worker processes (0 = serve remote "
                   "workers only; requires --fabric-listen)")
    g.add_argument("--fabric-listen", metavar="HOST:PORT", default=None,
                   help="serve the work queue over TCP so 'repro "
                   "fabric-worker --connect' processes can join (port 0 "
                   "picks a free port, printed on startup)")


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Effectiveness of Delaying Timestamp "
            "Computation' (PODC 2017)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="run a workload with clocks attached")
    p.add_argument("--topology", default="star",
                   choices=["star", "cycle", "clique", "path", "double-star",
                            "tree", "random"])
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--events", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--p-local", type=float, default=0.3)
    p.add_argument("--clocks", nargs="+", default=["inline", "vector"],
                   metavar="CLOCK")
    p.add_argument("--transport", default="eager",
                   choices=["eager", "piggyback"])
    p.add_argument("--fifo", action="store_true",
                   help="FIFO application channels")
    p.add_argument("--save-trace", metavar="PATH", default=None)
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="write a structured JSONL run trace (repro.obs)")
    p.add_argument("--online-oracle", action="store_true",
                   help="stream a causality oracle during the run (O(Δ) "
                   "appends) and freeze it for validation instead of "
                   "rebuilding happened-before afterwards")
    p.add_argument("--store", default=None,
                   choices=["auto", "object", "columnar"],
                   help="event-storage flavor: per-event objects or the "
                   "structure-of-arrays columnar store (default: the "
                   "REPRO_EVENT_STORE preference, else object)")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("validate", help="validate clocks on a saved trace")
    p.add_argument("trace")
    p.add_argument("--clocks", nargs="+", default=["inline", "vector"])
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="write a structured JSONL run trace (repro.obs)")
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser(
        "metrics",
        help="export a metrics registry as JSON (run a workload or "
        "reload --trace-out files)",
    )
    p.add_argument("--from-trace", nargs="+", metavar="PATH", default=None,
                   help="merge the metrics snapshots of these JSONL traces "
                   "instead of running a simulation")
    p.add_argument("--topology", default="star",
                   choices=["star", "cycle", "clique", "path", "double-star",
                            "tree", "random"])
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--events", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--clocks", nargs="+", default=["inline", "vector"],
                   metavar="CLOCK")
    p.add_argument("--output", metavar="PATH", default=None,
                   help="write the JSON here instead of stdout")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser("sizes", help="analytic size model (Thms 4.2/4.3)")
    p.add_argument("--n", type=int, default=32)
    p.add_argument("--k", type=int, default=1000)
    p.add_argument("--cover", type=int, default=1)
    p.set_defaults(fn=cmd_sizes)

    p = sub.add_parser("lower-bound", help="run a lower-bound adversary")
    p.add_argument("lemma", choices=["2.1", "2.2", "2.3", "2.4", "4.4"])
    p.add_argument("--n", type=int, default=8)
    p.set_defaults(fn=cmd_lower_bound)

    p = sub.add_parser(
        "experiments", help="quick headline reproduction of the core claims"
    )
    p.add_argument("--n", type=int, default=6)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the sweep cells")
    p.set_defaults(fn=cmd_experiments)

    p = sub.add_parser(
        "conformance",
        help="differential fuzz: all clock schemes vs both causality "
        "oracles on the same random executions",
    )
    p.add_argument("--trials", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--topology", nargs="+",
                   default=["star", "tree", "random"],
                   choices=["star", "tree", "random"])
    p.add_argument("--steps", type=int, default=40,
                   help="max generation steps per trial")
    p.add_argument("--corpus", metavar="DIR", default=None,
                   help="replay this pinned-case directory before fuzzing")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="write mismatches as a structured JSONL trace")
    p.add_argument("--save-failing", metavar="DIR", default=None,
                   help="write shrunken failing executions as corpus JSON")
    p.add_argument("--no-shrink", action="store_true",
                   help="report raw failing executions without minimizing")
    p.add_argument("--backend", default="auto",
                   choices=["auto", "pure", "numpy", "old-vs-new"],
                   help="kernel backend: pure/numpy pin every oracle; "
                   "auto and old-vs-new also cross-check the numpy array "
                   "kernel against the pure packed-int kernel")
    p.add_argument("--chunk-size", type=int, default=25,
                   help="trials per fabric cell (with --fabric)")
    _add_fabric_args(p)
    p.set_defaults(fn=cmd_conformance)

    p = sub.add_parser(
        "chaos", help="fault-scenario sweep with invariant checks (E16)"
    )
    p.add_argument("--topology", default="star",
                   choices=["star", "cycle", "clique", "path", "double-star",
                            "tree", "random"])
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--events", type=int, default=15)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--clocks", nargs="+",
                   default=["inline", "vector", "lamport"],
                   metavar="CLOCK")
    p.add_argument("--quick", action="store_true",
                   help="run the reduced 3-scenario smoke subset")
    p.add_argument("--unreliable", action="store_true",
                   help="fire-and-forget control messages (no retransmission)")
    p.add_argument("--retry-timeout", type=float, default=4.0,
                   help="retransmission timeout for the reliable transport")
    p.add_argument("--max-retries", type=int, default=4)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the scenario sweep")
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="write a structured JSONL sweep trace "
                   "(byte-identical for any --jobs)")
    _add_fabric_args(p)
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "fabric-worker",
        help="join a fabric coordinator over TCP and execute leased cells",
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="coordinator address printed by --fabric-listen")
    p.add_argument("--name", default=None,
                   help="worker name in lease/heartbeat bookkeeping "
                   "(default: net-<pid>)")
    p.add_argument("--heartbeat-interval", type=float, default=1.0,
                   help="seconds between lease heartbeats")
    p.add_argument("--max-cells", type=int, default=None,
                   help="exit after completing this many cells")
    p.set_defaults(fn=cmd_fabric_worker)

    p = sub.add_parser(
        "kv-live",
        help="boot a live loopback KV cluster, load it, crash it, audit it",
    )
    p.add_argument("--sequencers", type=int, default=2)
    p.add_argument("--servers", type=int, default=3)
    p.add_argument("--clients", type=int, default=8)
    p.add_argument("--keys", type=int, default=4)
    p.add_argument("--ops", type=int, default=10,
                   help="operations per client session")
    p.add_argument("--write-fraction", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--clock", default="inline",
                   choices=["inline", "inline-cover", "vector", "lamport",
                            "hlc", "cluster", "encoded", "plausible", "none"],
                   help="timestamping scheme hosted on the clock seam")
    p.add_argument("--loss", type=float, default=0.0,
                   help="mean Gilbert-Elliott frame loss rate, e.g. 0.05")
    p.add_argument("--duplicate", type=float, default=0.0,
                   help="frame duplication probability")
    p.add_argument("--kill-sequencer", type=int, default=None,
                   metavar="IDX",
                   help="crash this sequencer mid-run and restart it")
    p.add_argument("--kill-after-ops", type=int, default=None,
                   help="operations to complete before the crash "
                   "(default: a quarter of the total)")
    p.add_argument("--downtime", type=float, default=0.5,
                   help="seconds the killed sequencer stays down")
    p.add_argument("--timeout", type=float, default=0.25,
                   help="per-attempt request timeout in seconds")
    p.add_argument("--max-retries", type=int, default=5)
    p.add_argument("--compare-sim", action="store_true",
                   help="run the simulator on the same config and report "
                   "its prediction alongside")
    p.add_argument("--json", action="store_true",
                   help="emit the full report as JSON")
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="write a structured JSONL run trace (repro.obs)")
    p.set_defaults(fn=cmd_kv_live)

    p = sub.add_parser(
        "serve",
        help="run one live store node in this process (shared address book)",
    )
    p.add_argument("--pid", type=int, required=True,
                   help="process id of this node in the cluster layout")
    p.add_argument("--address-book", required=True, metavar="PATH",
                   help="shared JSON file mapping process ids to addresses")
    p.add_argument("--sequencers", type=int, default=2)
    p.add_argument("--servers", type=int, default=3)
    p.add_argument("--clients", type=int, default=4)
    p.add_argument("--keys", type=int, default=4)
    p.add_argument("--ops", type=int, default=10)
    p.add_argument("--write-fraction", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--timeout", type=float, default=0.5,
                   help="per-attempt request timeout in seconds")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "sync", help="timed synchronous run with component timestamps"
    )
    p.add_argument("--topology", default="star",
                   choices=["star", "cycle", "clique", "path", "double-star",
                            "tree", "random"])
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--events", type=int, default=15)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_sync)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = make_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Communication graphs, generators, vertex covers, and structural properties."""

from repro.topology.graph import CommunicationGraph, Edge
from repro.topology import generators
from repro.topology.vertex_cover import (
    best_cover,
    exact_minimum_cover,
    greedy_degree_cover,
    is_minimal_cover,
    matching_cover,
)
from repro.topology.properties import (
    adversary_diameter,
    articulation_points,
    lemma_2_4_set_x,
    vertex_connectivity,
)

__all__ = [
    "CommunicationGraph",
    "Edge",
    "generators",
    "best_cover",
    "exact_minimum_cover",
    "greedy_degree_cover",
    "is_minimal_cover",
    "matching_cover",
    "adversary_diameter",
    "articulation_points",
    "lemma_2_4_set_x",
    "vertex_connectivity",
]

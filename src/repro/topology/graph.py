"""Communication topologies.

The paper's system model is an asynchronous message-passing system whose
channels form an undirected *communication graph*: process ``i`` may exchange
messages with process ``j`` iff ``{i, j}`` is an edge.  The inline algorithm
of Section 4 exploits a vertex cover of this graph.

:class:`CommunicationGraph` is a small, dependency-free undirected simple
graph over vertices ``0 .. n-1``.  It is immutable after construction so that
executions, simulators and clock algorithms can safely share one instance.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Set, Tuple

Edge = Tuple[int, int]


class CommunicationGraph:
    """An undirected simple graph over vertices ``0 .. n-1``.

    Parameters
    ----------
    n_vertices:
        Number of processes.
    edges:
        Iterable of ``(u, v)`` pairs.  Order within a pair and duplicate
        pairs are ignored; self-loops are rejected.
    """

    def __init__(self, n_vertices: int, edges: Iterable[Edge]) -> None:
        if n_vertices < 1:
            raise ValueError("graph needs at least one vertex")
        self._n = n_vertices
        adjacency: List[Set[int]] = [set() for _ in range(n_vertices)]
        edge_set: Set[FrozenSet[int]] = set()
        for u, v in edges:
            if not (0 <= u < n_vertices and 0 <= v < n_vertices):
                raise ValueError(f"edge ({u},{v}) out of range [0,{n_vertices})")
            if u == v:
                raise ValueError(f"self-loop at vertex {u} not allowed")
            adjacency[u].add(v)
            adjacency[v].add(u)
            edge_set.add(frozenset((u, v)))
        self._adj: Tuple[FrozenSet[int], ...] = tuple(
            frozenset(s) for s in adjacency
        )
        self._edges: Tuple[Edge, ...] = tuple(
            sorted((min(e), max(e)) for e in edge_set)
        )

    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return self._n

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All edges as sorted ``(min, max)`` pairs, in lexicographic order."""
        return self._edges

    @property
    def n_edges(self) -> int:
        return len(self._edges)

    def vertices(self) -> range:
        return range(self._n)

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj[u] if 0 <= u < self._n else False

    def neighbors(self, u: int) -> FrozenSet[int]:
        return self._adj[u]

    def degree(self, u: int) -> int:
        return len(self._adj[u])

    # ------------------------------------------------------------------
    def is_vertex_cover(self, cover: Iterable[int]) -> bool:
        """Whether every edge has at least one endpoint in *cover*."""
        cset = set(cover)
        return all(u in cset or v in cset for u, v in self._edges)

    def subgraph_without(self, removed: Iterable[int]) -> "CommunicationGraph":
        """The induced subgraph on the complement of *removed*.

        Vertex ids are preserved (the graph keeps ``n`` vertices; removed
        vertices become isolated).  Used by connectivity computations.
        """
        rset = set(removed)
        return CommunicationGraph(
            self._n,
            [e for e in self._edges if e[0] not in rset and e[1] not in rset],
        )

    def connected_components(self, ignore: Iterable[int] = ()) -> List[Set[int]]:
        """Connected components, optionally ignoring some vertices entirely."""
        skip = set(ignore)
        seen: Set[int] = set(skip)
        comps: List[Set[int]] = []
        for start in range(self._n):
            if start in seen:
                continue
            comp = {start}
            stack = [start]
            seen.add(start)
            while stack:
                u = stack.pop()
                for v in self._adj[u]:
                    if v not in seen:
                        seen.add(v)
                        comp.add(v)
                        stack.append(v)
            comps.append(comp)
        return comps

    def is_connected(self) -> bool:
        """Whether the graph (all ``n`` vertices) is connected."""
        comps = self.connected_components()
        return len(comps) == 1

    def bfs_distances(self, source: int, ignore: Iterable[int] = ()) -> List[int]:
        """BFS hop distances from *source*; ``-1`` for unreachable vertices."""
        skip = set(ignore)
        dist = [-1] * self._n
        if source in skip:
            return dist
        dist[source] = 0
        queue = [source]
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            for v in self._adj[u]:
                if v not in skip and dist[v] == -1:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def diameter(self, ignore: Iterable[int] = ()) -> int:
        """Largest finite hop distance among non-ignored vertices.

        Raises ``ValueError`` if the non-ignored part is disconnected.
        """
        skip = set(ignore)
        verts = [v for v in range(self._n) if v not in skip]
        best = 0
        for s in verts:
            dist = self.bfs_distances(s, ignore=skip)
            for v in verts:
                if dist[v] == -1:
                    raise ValueError("graph (minus ignored vertices) is disconnected")
                best = max(best, dist[v])
        return best

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommunicationGraph):
            return NotImplemented
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._n, self._edges))

    def __repr__(self) -> str:
        return f"CommunicationGraph(n={self._n}, edges={len(self._edges)})"

"""Structural graph properties used by the lower-bound results.

Lemma 2.3 applies to graphs of vertex connectivity >= 2; Lemma 2.4 applies to
graphs of vertex connectivity 1 and is stated in terms of the set ``X`` of
processes that do not individually form a cut vertex.  This module computes:

- articulation points (cut vertices) via Tarjan's DFS low-link algorithm;
- the set ``X`` (non-cut vertices) of Lemma 2.4;
- exact vertex connectivity via Menger's theorem (max vertex-disjoint paths
  between non-adjacent pairs, computed with unit-capacity BFS augmentation on
  the split-vertex flow network);
- the diameter quantity ``D`` used in the Lemma 2.3/2.4 adversaries (the
  maximum diameter over subgraphs missing one vertex).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.topology.graph import CommunicationGraph


def articulation_points(graph: CommunicationGraph) -> Set[int]:
    """Cut vertices of *graph* (Tarjan low-link, iterative DFS)."""
    n = graph.n_vertices
    visited = [False] * n
    disc = [0] * n
    low = [0] * n
    parent = [-1] * n
    points: Set[int] = set()
    timer = [0]

    for start in range(n):
        if visited[start]:
            continue
        # iterative DFS with explicit child counting for the root
        root_children = 0
        stack: List[Tuple[int, iter]] = []
        visited[start] = True
        disc[start] = low[start] = timer[0]
        timer[0] += 1
        stack.append((start, iter(graph.neighbors(start))))
        while stack:
            u, it = stack[-1]
            advanced = False
            for v in it:
                if not visited[v]:
                    visited[v] = True
                    parent[v] = u
                    disc[v] = low[v] = timer[0]
                    timer[0] += 1
                    if u == start:
                        root_children += 1
                    stack.append((v, iter(graph.neighbors(v))))
                    advanced = True
                    break
                elif v != parent[u]:
                    low[u] = min(low[u], disc[v])
            if not advanced:
                stack.pop()
                if stack:
                    p = stack[-1][0]
                    low[p] = min(low[p], low[u])
                    if p != start and low[u] >= disc[p]:
                        points.add(p)
        if root_children > 1:
            points.add(start)
    return points


def lemma_2_4_set_x(graph: CommunicationGraph) -> Set[int]:
    """The set ``X`` of Lemma 2.4: vertices that are not cut vertices.

    For a star graph this is exactly the set of radial processes, giving the
    paper's observation that ``|X| = n - 1`` there.
    """
    return set(range(graph.n_vertices)) - articulation_points(graph)


def _max_vertex_disjoint_paths(
    graph: CommunicationGraph, s: int, t: int
) -> int:
    """Maximum number of internally vertex-disjoint s-t paths (Menger).

    Standard vertex-splitting construction: each vertex v becomes v_in/v_out
    with a unit-capacity internal arc (infinite for s and t); each undirected
    edge {u, v} becomes arcs u_out->v_in and v_out->u_in of unit capacity.
    Unit capacities let us augment with plain BFS.
    """
    n = graph.n_vertices
    # node encoding: 2*v = v_in, 2*v+1 = v_out
    INF = 1 << 30
    cap: Dict[Tuple[int, int], int] = {}

    def add(u: int, v: int, c: int) -> None:
        cap[(u, v)] = cap.get((u, v), 0) + c
        cap.setdefault((v, u), 0)

    for v in range(n):
        add(2 * v, 2 * v + 1, INF if v in (s, t) else 1)
    for u, v in graph.edges:
        add(2 * u + 1, 2 * v, 1)
        add(2 * v + 1, 2 * u, 1)

    adjacency: Dict[int, List[int]] = {}
    for (u, v) in cap:
        adjacency.setdefault(u, []).append(v)

    source, sink = 2 * s + 1, 2 * t
    flow = 0
    while True:
        # BFS for augmenting path
        prev: Dict[int, int] = {source: source}
        queue = [source]
        head = 0
        while head < len(queue) and sink not in prev:
            u = queue[head]
            head += 1
            for v in adjacency.get(u, ()):
                if v not in prev and cap[(u, v)] > 0:
                    prev[v] = u
                    queue.append(v)
        if sink not in prev:
            return flow
        v = sink
        while v != source:
            u = prev[v]
            cap[(u, v)] -= 1
            cap[(v, u)] += 1
            v = u
        flow += 1
        if flow > n:  # pragma: no cover - safety
            raise RuntimeError("flow exceeded vertex count")


#: memo keyed by the (immutable, hashable) graph — the lower-bound drivers
#: re-validate connectivity for the same graphs on every sweep cell
_connectivity_memo: Dict[CommunicationGraph, int] = {}


def vertex_connectivity(graph: CommunicationGraph) -> int:
    """Exact vertex connectivity (memoized per graph).

    0 for disconnected graphs, ``n-1`` for complete graphs; otherwise the
    minimum over Menger computations.  Uses the classic optimization: fix a
    minimum-degree vertex ``s`` and compute against all non-neighbors, plus
    pairs of neighbors of ``s``.
    """
    hit = _connectivity_memo.get(graph)
    if hit is not None:
        return hit
    n = graph.n_vertices
    if n <= 1:
        best = 0
    elif not graph.is_connected():
        best = 0
    elif graph.n_edges == n * (n - 1) // 2:
        best = n - 1
    else:
        s = min(range(n), key=graph.degree)
        best = graph.degree(s)
        non_neighbors = [
            t for t in range(n) if t != s and not graph.has_edge(s, t)
        ]
        for t in non_neighbors:
            best = min(best, _max_vertex_disjoint_paths(graph, s, t))
        neigh = sorted(graph.neighbors(s))
        for i, u in enumerate(neigh):
            for v in neigh[i + 1 :]:
                if not graph.has_edge(u, v):
                    best = min(best, _max_vertex_disjoint_paths(graph, u, v))
    _connectivity_memo[graph] = best
    return best


def adversary_diameter(graph: CommunicationGraph, candidates: Set[int]) -> int:
    """The quantity ``D`` from Lemmas 2.3/2.4.

    Maximum, over each vertex ``x`` in *candidates*, of the diameter of the
    subgraph induced by removing ``x``.  The adversary makes all of one
    vertex's channels slower than ``2*delta*D`` so that flooding completes
    among the other vertices first.
    """
    best = 0
    for x in candidates:
        best = max(best, graph.diameter(ignore={x}))
    return best

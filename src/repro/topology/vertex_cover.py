"""Vertex-cover computation.

The size of the paper's inline timestamps is ``2*|VC| + 2`` where ``VC`` is
*any* vertex cover of the communication graph (Theorem 4.2), so the smaller
the cover we find, the smaller the timestamps.  Minimum vertex cover is
NP-hard in general; we provide:

- :func:`exact_minimum_cover` — branch-and-bound with degree-1/degree-0
  reductions, exact for the graph sizes used in our experiments (works
  comfortably up to a few hundred vertices on sparse graphs);
- :func:`matching_cover` — the classic maximal-matching 2-approximation;
- :func:`greedy_degree_cover` — highest-degree-first heuristic (no worst-case
  guarantee but often small in practice);
- :func:`best_cover` — run all of the above within a node budget and return
  the smallest result.

All functions return a sorted list of vertex ids that is guaranteed to be a
vertex cover (each function validates its own output).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.topology.graph import CommunicationGraph

#: memo for :func:`best_cover` — sweeps construct ``CoverInlineClock(graph)``
#: for the same handful of (immutable, hashable) graphs over and over, and
#: the exact branch-and-bound is by far the most expensive part of that.
_best_cover_memo: Dict[Tuple[CommunicationGraph, int], Tuple[int, ...]] = {}


def _check(graph: CommunicationGraph, cover: Sequence[int]) -> List[int]:
    out = sorted(set(cover))
    if not graph.is_vertex_cover(out):
        raise AssertionError("internal error: produced set is not a cover")
    return out


def matching_cover(graph: CommunicationGraph) -> List[int]:
    """Maximal-matching 2-approximation.

    Greedily picks edges with both endpoints unmatched and adds both
    endpoints to the cover.  Guaranteed within a factor 2 of optimal.
    """
    matched: Set[int] = set()
    cover: List[int] = []
    for u, v in graph.edges:
        if u not in matched and v not in matched:
            matched.add(u)
            matched.add(v)
            cover.extend((u, v))
    return _check(graph, cover)


def greedy_degree_cover(graph: CommunicationGraph) -> List[int]:
    """Repeatedly take the vertex covering the most uncovered edges."""
    remaining: Set[Tuple[int, int]] = set(graph.edges)
    degree = [0] * graph.n_vertices
    for u, v in remaining:
        degree[u] += 1
        degree[v] += 1
    cover: List[int] = []
    while remaining:
        best = max(range(graph.n_vertices), key=lambda w: degree[w])
        if degree[best] == 0:  # pragma: no cover - defensive
            break
        cover.append(best)
        gone = [e for e in remaining if best in e]
        for u, v in gone:
            remaining.discard((u, v))
            degree[u] -= 1
            degree[v] -= 1
    return _check(graph, cover)


def _reduce(
    adj: List[Set[int]], cover: Set[int]
) -> None:
    """Apply degree-1 reduction exhaustively (in place).

    If a vertex has exactly one neighbor, its neighbor can always be taken
    into the cover without loss of optimality.
    """
    changed = True
    while changed:
        changed = False
        for v in range(len(adj)):
            if len(adj[v]) == 1:
                (u,) = adj[v]
                cover.add(u)
                for w in list(adj[u]):
                    adj[w].discard(u)
                adj[u].clear()
                changed = True


def exact_minimum_cover(
    graph: CommunicationGraph, node_budget: int = 2_000_000
) -> List[int]:
    """Exact minimum vertex cover by branch-and-bound.

    Branches on a vertex of maximum remaining degree: either it is in the
    cover, or all of its neighbors are.  Degree-1 reductions are applied at
    every node.  *node_budget* bounds the search-tree size; exceeding it
    raises ``RuntimeError`` (callers wanting a fallback should use
    :func:`best_cover`).
    """
    best: List[Set[int]] = [set(matching_cover(graph))]
    upper = [len(best[0])]
    nodes = [0]

    def recurse(adj: List[Set[int]], cover: Set[int]) -> None:
        nodes[0] += 1
        if nodes[0] > node_budget:
            raise RuntimeError("exact vertex-cover search exceeded node budget")
        _reduce(adj, cover)
        if len(cover) >= upper[0]:
            return
        # lower bound: matching on the remaining graph
        remaining_edges = [
            (u, v) for u in range(len(adj)) for v in adj[u] if u < v
        ]
        if not remaining_edges:
            if len(cover) < len(best[0]):
                best[0] = set(cover)
                upper[0] = len(cover)
            return
        matched: Set[int] = set()
        lb = 0
        for u, v in remaining_edges:
            if u not in matched and v not in matched:
                matched.add(u)
                matched.add(v)
                lb += 1
        if len(cover) + lb >= upper[0]:
            return
        # branch vertex: max degree
        pivot = max(range(len(adj)), key=lambda w: len(adj[w]))
        neighbors = set(adj[pivot])

        # branch 1: pivot in cover
        adj1 = [set(s) for s in adj]
        for w in neighbors:
            adj1[w].discard(pivot)
        adj1[pivot].clear()
        recurse(adj1, cover | {pivot})

        # branch 2: all neighbors of pivot in cover
        adj2 = [set(s) for s in adj]
        for w in neighbors:
            for x in list(adj2[w]):
                adj2[x].discard(w)
            adj2[w].clear()
        recurse(adj2, cover | neighbors)

    adj0 = [set(graph.neighbors(v)) for v in range(graph.n_vertices)]
    recurse(adj0, set())
    return _check(graph, sorted(best[0]))


def best_cover(graph: CommunicationGraph, node_budget: int = 200_000) -> List[int]:
    """Smallest cover obtainable: exact if affordable, else best heuristic.

    Results are memoized per ``(graph, node_budget)`` — graphs are immutable
    and hashable, and the computation is deterministic.  Each call returns a
    fresh list, so callers may mutate their copy freely.
    """
    key = (graph, node_budget)
    hit = _best_cover_memo.get(key)
    if hit is None:
        candidates = [matching_cover(graph), greedy_degree_cover(graph)]
        try:
            candidates.append(
                exact_minimum_cover(graph, node_budget=node_budget)
            )
        except RuntimeError:
            pass
        hit = tuple(min(candidates, key=len))
        _best_cover_memo[key] = hit
    return list(hit)


def is_minimal_cover(graph: CommunicationGraph, cover: Sequence[int]) -> bool:
    """Whether *cover* is a cover with no removable vertex (inclusion-minimal)."""
    cset = set(cover)
    if not graph.is_vertex_cover(cset):
        return False
    return all(not graph.is_vertex_cover(cset - {v}) for v in cset)

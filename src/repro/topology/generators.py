"""Topology generators for the families used throughout the paper.

The paper's arguments feature the *star* graph (Sections 2-3), arbitrary
graphs with a known vertex cover (Section 4), graphs of vertex connectivity
>= 2 and == 1 (Lemmas 2.3, 2.4), and the sequencer-based client/server
architecture of Figure 4.  This module builds all of them, plus standard
families (clique, ring/cycle, path, tree, bipartite, Erdos-Renyi) used in the
benchmarks.

All generators return a :class:`~repro.topology.graph.CommunicationGraph`
whose vertices are ``0 .. n-1``.  Where a family has a canonical small vertex
cover, the convention for which vertices form it is documented per function.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.topology.graph import CommunicationGraph, Edge


def star(n: int) -> CommunicationGraph:
    """Star graph: vertex 0 is the central process, 1..n-1 are radial.

    ``{0}`` is a minimum vertex cover.  This is the topology of the paper's
    Sections 2 and 3.
    """
    if n < 2:
        raise ValueError("a star needs at least 2 vertices")
    return CommunicationGraph(n, [(0, i) for i in range(1, n)])


def clique(n: int) -> CommunicationGraph:
    """Complete graph.  Minimum vertex cover has n-1 vertices."""
    if n < 2:
        raise ValueError("a clique needs at least 2 vertices")
    return CommunicationGraph(
        n, [(i, j) for i in range(n) for j in range(i + 1, n)]
    )


def cycle(n: int) -> CommunicationGraph:
    """Cycle graph C_n (vertex connectivity 2, used for Lemma 2.3)."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    return CommunicationGraph(n, [(i, (i + 1) % n) for i in range(n)])


def path(n: int) -> CommunicationGraph:
    """Path graph P_n (vertex connectivity 1)."""
    if n < 2:
        raise ValueError("a path needs at least 2 vertices")
    return CommunicationGraph(n, [(i, i + 1) for i in range(n - 1)])


def complete_bipartite(a: int, b: int) -> CommunicationGraph:
    """K_{a,b}: vertices 0..a-1 on one side, a..a+b-1 on the other.

    The smaller side is a minimum vertex cover — the natural client/server
    topology of the related-work discussion (Section 5).
    """
    if a < 1 or b < 1:
        raise ValueError("both sides need at least one vertex")
    return CommunicationGraph(
        a + b, [(i, a + j) for i in range(a) for j in range(b)]
    )


def double_star(left_leaves: int, right_leaves: int) -> CommunicationGraph:
    """Two adjacent hubs (vertices 0 and 1), each with its own leaves.

    ``{0, 1}`` is a minimum vertex cover of size 2; vertex connectivity is 1.
    A useful minimal example of a non-star graph with a tiny cover.
    """
    if left_leaves < 1 or right_leaves < 1:
        raise ValueError("each hub needs at least one leaf")
    n = 2 + left_leaves + right_leaves
    edges: List[Edge] = [(0, 1)]
    edges += [(0, 2 + i) for i in range(left_leaves)]
    edges += [(1, 2 + left_leaves + j) for j in range(right_leaves)]
    return CommunicationGraph(n, edges)


def random_tree(n: int, rng: random.Random) -> CommunicationGraph:
    """Uniform random labelled tree via a random Prufer-like attachment."""
    if n < 2:
        raise ValueError("a tree needs at least 2 vertices")
    edges = [(rng.randrange(i), i) for i in range(1, n)]
    return CommunicationGraph(n, edges)


def erdos_renyi(
    n: int, p: float, rng: random.Random, ensure_connected: bool = True
) -> CommunicationGraph:
    """G(n, p) random graph.

    When *ensure_connected* is set, a random spanning-tree skeleton is added
    first so the result is always connected (the paper assumes processes can
    eventually influence each other).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    edges: List[Edge] = []
    if ensure_connected:
        edges.extend((rng.randrange(i), i) for i in range(1, n))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                edges.append((i, j))
    return CommunicationGraph(n, edges)


def theta_graph(path_lengths: Sequence[int]) -> CommunicationGraph:
    """Two terminals joined by >= 2 internally disjoint paths.

    With at least two paths the graph is 2-connected — a convenient
    non-clique, non-cycle instance for Lemma 2.3.  *path_lengths* gives the
    number of internal vertices on each path (0 means a direct edge; at most
    one direct edge is allowed in a simple graph).
    """
    if len(path_lengths) < 2:
        raise ValueError("a theta graph needs at least two paths")
    if sum(1 for k in path_lengths if k == 0) > 1:
        raise ValueError("at most one direct edge between the terminals")
    edges: List[Edge] = []
    next_vertex = 2  # 0 and 1 are the terminals
    for k in path_lengths:
        prev = 0
        for _ in range(k):
            edges.append((prev, next_vertex))
            prev = next_vertex
            next_vertex += 1
        edges.append((prev, 1))
    return CommunicationGraph(next_vertex, edges)


def sequencer_architecture(
    n_sequencers: int,
    n_servers: int,
    n_clients: int,
    rng: Optional[random.Random] = None,
    attachments_per_node: int = 1,
) -> Tuple[CommunicationGraph, List[int]]:
    """The Figure-4 architecture: sequencers form the vertex cover.

    Vertices ``0 .. n_sequencers-1`` are sequencers, the next *n_servers*
    are servers, the rest are clients.  Sequencers are pairwise connected
    (they coordinate with each other); each server and each client attaches
    to *attachments_per_node* sequencers (the first deterministically if no
    RNG is given, random ones otherwise).  Servers and clients never talk to
    each other directly — all communication is mediated by sequencers, which
    is exactly what makes the sequencer set a vertex cover.

    Returns ``(graph, sequencer_ids)``.
    """
    if n_sequencers < 1:
        raise ValueError("need at least one sequencer")
    if attachments_per_node < 1 or attachments_per_node > n_sequencers:
        raise ValueError("attachments_per_node out of range")
    n = n_sequencers + n_servers + n_clients
    edges: List[Edge] = [
        (i, j) for i in range(n_sequencers) for j in range(i + 1, n_sequencers)
    ]
    for v in range(n_sequencers, n):
        if rng is None:
            chosen = [(v + k) % n_sequencers for k in range(attachments_per_node)]
        else:
            chosen = rng.sample(range(n_sequencers), attachments_per_node)
        edges.extend((s, v) for s in chosen)
    return CommunicationGraph(n, edges), list(range(n_sequencers))


def wheel(n: int) -> CommunicationGraph:
    """Wheel graph: vertex 0 is the hub, 1..n-1 form a cycle around it.

    Vertex connectivity is 3 for n >= 5 — another Lemma 2.3 instance.
    """
    if n < 4:
        raise ValueError("a wheel needs at least 4 vertices")
    edges = [(0, i) for i in range(1, n)]
    edges += [(i, i + 1) for i in range(1, n - 1)]
    edges.append((1, n - 1))
    return CommunicationGraph(n, edges)


def grid(rows: int, cols: int) -> CommunicationGraph:
    """2D mesh: vertex ``r*cols + c`` connects to its 4-neighbourhood.

    Vertex connectivity 2 for meshes with both dimensions ≥ 2 (a Lemma 2.3
    family); the minimum vertex cover is large (~n/2), so it is also a
    topology where the inline scheme does *not* beat vector clocks — useful
    for exercising both sides of the crossover.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid needs positive dimensions")
    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return CommunicationGraph(rows * cols, edges)


def caterpillar(spine: int, legs_per_vertex: int) -> CommunicationGraph:
    """A path (the spine) with *legs_per_vertex* leaves on each spine vertex.

    The spine is a vertex cover of size *spine*; connectivity is 1.
    """
    if spine < 1 or legs_per_vertex < 0:
        raise ValueError("invalid caterpillar parameters")
    edges: List[Edge] = [(i, i + 1) for i in range(spine - 1)]
    next_vertex = spine
    for s in range(spine):
        for _ in range(legs_per_vertex):
            edges.append((s, next_vertex))
            next_vertex += 1
    return CommunicationGraph(max(next_vertex, 1), edges)

#!/usr/bin/env python3
"""Scenario: debugging a distributed system with predicate detection.

A classic motivation for causality tracking (paper Section 6): detect
whether a *bad global state* — every worker simultaneously inside its
critical section — could have occurred.  We monitor a client/server system
with inline timestamps and run weak-conjunctive-predicate detection on the
finalized cut, comparing against what an online vector clock would answer.

Run:  python examples/debugging_predicate_detection.py
"""

from repro.applications.predicate import (
    detect_conjunctive,
    detect_with_inline,
    oracle_comparator,
)
from repro.clocks import CoverInlineClock, VectorClock
from repro.core import HappenedBeforeOracle
from repro.sim import ClientServerWorkload, Simulation
from repro.topology import generators


def main() -> None:
    # 2 servers (the vertex cover), 5 clients
    graph = generators.double_star(2, 3)
    n = graph.n_vertices
    cover = (0, 1)

    sim = Simulation(
        graph,
        seed=7,
        clocks={
            "inline": CoverInlineClock(graph, cover),
            "vector": VectorClock(n),
        },
    )
    result = sim.run(ClientServerWorkload(requests_per_client=12,
                                          servers=cover))
    ex = result.execution
    print(f"monitored {ex.n_events} events over topology with |VC|=2")

    # "critical section" = the worker has issued at least 5 requests;
    # local predicate holds from its 5th event onward
    workers = [p for p in range(n) if p not in cover and ex.events_at(p)]
    marks = {
        p: list(range(5, len(ex.events_at(p)) + 1))
        for p in workers
    }
    print(f"watching predicate over workers {workers}")

    # ------------------------------------------------------------------
    # online answer (vector clocks / ground truth)
    # ------------------------------------------------------------------
    oracle = HappenedBeforeOracle(ex)
    online = detect_conjunctive(oracle_comparator(oracle), marks)
    print(f"\nonline detection (vector clocks): found = {online.found}")
    if online.witness:
        cut = {p: str(e) for p, e in sorted(online.witness.items())}
        print(f"  witness global state: {cut}")

    # ------------------------------------------------------------------
    # inline answer, mid-run: only events finalized during the run count
    # ------------------------------------------------------------------
    inline_asg = result.assignments["inline"]
    midrun = detect_with_inline(
        inline_asg, marks, finalized=set(result.finalization_times["inline"])
    )
    print(f"\ninline detection on the mid-run finalized cut: "
          f"found = {midrun.found}")

    # ------------------------------------------------------------------
    # inline answer after all timestamps finalize: agrees with online
    # ------------------------------------------------------------------
    final = detect_with_inline(
        inline_asg, marks, finalized={ev.eid for ev in ex.all_events()}
    )
    print(f"inline detection after finalization:          "
          f"found = {final.found}")
    assert final.found == online.found
    print("\ninline and online agree once timestamps finalize — with "
          "timestamps of 6 elements instead of "
          f"{n}.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: the Figure-4 causal key-value store.

Clients and servers talk only through a handful of *sequencers*, which
therefore form a vertex cover of the communication graph: inline timestamps
need ``2·#sequencers + 2`` elements no matter how large the deployment
grows.  Bulk data can additionally bypass the sequencers (Figure 4's dashed
arrow) while only timestamp metadata flows through them.

The store is fully implemented: per-key primary serialization, dependency-
gated reads (Lazy-Replication style), replication, and a post-hoc causal
consistency audit.

Run:  python examples/sequencer_kv_store.py
"""

from repro.applications.causal_kv import (
    StoreConfig,
    run_store,
    verify_causal_reads,
)
from repro.analysis.reports import format_table


def main() -> None:
    rows = []
    for n_clients in (4, 8, 16, 32):
        cfg = StoreConfig(
            n_sequencers=2,
            n_servers=3,
            n_clients=n_clients,
            n_keys=5,
            ops_per_client=8,
            write_fraction=0.5,
            seed=n_clients,
        )
        run = run_store(cfg)
        violations = verify_causal_reads(run)
        rows.append(
            [
                cfg.total_processes(),
                n_clients,
                run.completed_operations,
                run.inline_max_elements,
                run.vector_elements,
                "yes" if not violations else f"NO ({len(violations)})",
            ]
        )

    print(
        format_table(
            ["processes", "clients", "ops", "inline ts elements",
             "vector ts elements", "causally consistent"],
            rows,
            title="Figure-4 store: timestamp size vs deployment size",
        )
    )

    # traffic story for one deployment
    cfg = StoreConfig(n_sequencers=2, n_servers=4, n_clients=12,
                      ops_per_client=8, seed=1)
    run = run_store(cfg)
    t = run.traffic
    print("\nsequencer traffic for the 18-process deployment:")
    print(f"  baseline  (data via sequencers): "
          f"{t.baseline_sequencer_data_load} data hops + "
          f"{t.sequencer_meta_hops} metadata hops")
    print(f"  optimized (data direct, Fig. 4): "
          f"{t.optimized_sequencer_data_load} data hops + "
          f"{t.sequencer_meta_hops + t.sequencer_data_hops} metadata hops")
    print("\ninline timestamps stay at "
          f"{run.inline_max_elements} elements while the vector clock would "
          f"need {run.vector_elements}; all bulk data can bypass the "
          "sequencers.")


if __name__ == "__main__":
    main()

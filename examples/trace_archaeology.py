#!/usr/bin/env python3
"""Scenario: post-mortem analysis of an archived execution trace.

A production incident happened last week; all you have is the JSON trace a
monitor archived.  This example shows the offline toolbox:

1. reload and re-validate the trace (`repro.core.trace`);
2. rebuild causality and assign the *smallest* timestamps the computation
   admits — offline realizer vectors, often just 2–4 elements;
3. check whether a suspicious global state was reachable
   (Cooper–Marzullo ``possibly``) and whether it was unavoidable
   (``definitely``);
4. produce a deterministic replay schedule for a debugger.

Run:  python examples/trace_archaeology.py
"""

import random
import tempfile
from pathlib import Path

from repro.applications.global_predicate import definitely, possibly
from repro.applications.replay import is_causal_schedule, replay_schedule
from repro.clocks import VectorClock, replay_one
from repro.core import HappenedBeforeOracle
from repro.core.random_executions import random_execution
from repro.core.trace import load_execution, save_execution
from repro.lowerbounds.realizers import (
    offline_vector_timestamps,
    verify_offline_vectors,
)
from repro.topology import generators


def main() -> None:
    # --- the "incident": a star system run whose trace was archived
    graph = generators.star(6)
    original = random_execution(
        graph, random.Random(2024), steps=45, deliver_all=True
    )
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "incident.json"
        save_execution(original, trace_path)
        print(f"archived trace: {trace_path.stat().st_size} bytes")

        # --- 1. reload (the loader re-validates every model invariant)
        execution = load_execution(trace_path)
    print(f"reloaded: {execution.n_events} events, "
          f"{len(execution.messages)} messages, "
          f"{execution.n_processes} processes")

    oracle = HappenedBeforeOracle(execution)

    # --- 2. smallest offline timestamps for the archive
    vectors = offline_vector_timestamps(execution)
    assert vectors is not None and verify_offline_vectors(execution, vectors)
    k = len(next(iter(vectors.values())))
    print(f"\noffline timestamps: {k} elements per event "
          f"(an online vector clock would have needed "
          f"{execution.n_processes}; the paper's inline scheme uses 4)")

    # --- 3. was the suspicious state reachable?
    # "every radial process had executed at least 3 events simultaneously"
    def suspicious(cut):
        return all(cut[p] >= 3 for p in range(1, execution.n_processes))

    witness = possibly(oracle, suspicious)
    unavoidable = definitely(oracle, suspicious) if witness else False
    print(f"\nsuspicious global state reachable:  {witness is not None}"
          + (f" (first witness cut: {witness})" if witness else ""))
    print(f"suspicious global state unavoidable: {unavoidable}")

    # --- 4. a deterministic replay schedule for the debugger
    assignment = replay_one(execution, VectorClock(execution.n_processes))
    order = replay_schedule(assignment)
    assert is_causal_schedule(execution, order)
    print(f"\nreplay schedule of {len(order)} events "
          f"(first five: {[str(e) for e in order[:5]]})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: inline timestamps in five minutes.

Builds a small star system, runs a random workload on the simulator with
both the paper's inline clock and a standard vector clock attached, and
shows the headline trade-off:

- the vector clock stores ``n`` integers per event and is final instantly;
- the inline clock stores at most 4 integers per event (``2|VC|+2`` with
  ``|VC|=1``), at the price of a short delay before each timestamp becomes
  permanent — after which both clocks answer every causality query
  identically.

Run:  python examples/quickstart.py
"""

from repro.analysis import summarize_latencies
from repro.clocks import StarInlineClock, VectorClock
from repro.core import HappenedBeforeOracle
from repro.sim import Simulation, UniformWorkload
from repro.topology import generators


def main() -> None:
    n = 8
    graph = generators.star(n)  # process 0 is the hub

    sim = Simulation(
        graph,
        seed=42,
        clocks={
            "inline": StarInlineClock(n, center=0),
            "vector": VectorClock(n),
        },
    )
    result = sim.run(UniformWorkload(events_per_process=20, p_local=0.3))
    execution = result.execution
    print(f"simulated {execution.n_events} events, "
          f"{result.app_messages} messages, "
          f"virtual duration {result.duration:.1f}")

    # ------------------------------------------------------------------
    # 1. both clocks characterize causality exactly
    # ------------------------------------------------------------------
    oracle = HappenedBeforeOracle(execution)
    for name in ("inline", "vector"):
        report = result.assignments[name].validate(oracle)
        print(f"{name:>7}: exact causality capture = {report.characterizes}")

    # ------------------------------------------------------------------
    # 2. but their sizes differ drastically
    # ------------------------------------------------------------------
    inline = result.assignments["inline"]
    vector = result.assignments["vector"]
    print(f"\ntimestamp elements:  inline max = {inline.max_elements()} "
          f"(bound 2|VC|+2 = 4),  vector = {vector.max_elements()} (= n)")

    # ------------------------------------------------------------------
    # 3. the price: a finalization delay
    # ------------------------------------------------------------------
    s = summarize_latencies(result, "inline")
    print(f"\ninline finalization: {s.finalized_fraction:.0%} of events "
          f"final before termination; mean latency {s.mean:.2f}, "
          f"p95 {s.p95:.2f} (virtual time)")

    # ------------------------------------------------------------------
    # 4. querying causality from the timestamps alone
    # ------------------------------------------------------------------
    events = [ev.eid for ev in execution.all_events()][:6]
    print("\nsample queries (timestamps only, no global knowledge):")
    for e in events[:3]:
        for f in events[3:]:
            rel = (
                "->" if inline.precedes(e, f)
                else "<-" if inline.precedes(f, e)
                else "||"
            )
            agrees = inline.precedes(e, f) == oracle.happened_before(e, f)
            print(f"  {str(e):>8} {rel} {str(f):<8}  (matches oracle: {agrees})")


if __name__ == "__main__":
    main()

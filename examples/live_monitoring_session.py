#!/usr/bin/env python3
"""Scenario: a monitoring dashboard over inline timestamps.

An operator's view of the paper's Section 6: as the system runs, the
monitor's *analysis window* — the consistent cut of finalized events —
trails the execution frontier and catches up as round trips complete.
The :class:`~repro.applications.session.AnalysisSession` facade answers
time-travel queries against one recorded run:

- how big was the knowledge gap over time?
- what recovery line could we have computed at each instant?
- when did a watched predicate become detectable?

Run:  python examples/live_monitoring_session.py
"""

from repro.analysis.reports import format_table
from repro.applications.session import AnalysisSession
from repro.clocks import StarInlineClock, VectorClock
from repro.core.cuts import cut_size
from repro.sim import ConstantDelay, Simulation, UniformWorkload
from repro.topology import generators


def main() -> None:
    n = 6
    graph = generators.star(n)
    sim = Simulation(
        graph,
        seed=17,
        clocks={"inline": StarInlineClock(n), "vector": VectorClock(n)},
        delay_model=ConstantDelay(1.0),
    )
    result = sim.run(UniformWorkload(events_per_process=20, p_local=0.3))
    session = AnalysisSession(result, "inline")
    print(f"run: {result.execution.n_events} events over "
          f"{result.duration:.1f} time units\n")

    # watched predicate: every radial process past its 5th event
    ex = result.execution
    marks = {
        p: list(range(5, len(ex.events_at(p)) + 1))
        for p in range(1, n)
        if len(ex.events_at(p)) >= 5
    }

    rows = []
    for snap in session.knowledge_curve(9):
        detected = session.detect_at(snap.time, marks).found if marks else False
        line = session.recovery_line_at(snap.time, every_k=4)
        rows.append(
            [
                round(snap.time, 1),
                snap.occurred_events,
                snap.finalized_events,
                snap.knowledge_gap,
                cut_size(line),
                "yes" if detected else "-",
            ]
        )
    print(
        format_table(
            ["time", "occurred", "finalized", "gap",
             "recovery line (events)", "predicate detected"],
            rows,
            title="the analysis window trailing the execution frontier",
        )
    )
    print(
        "\nthe gap column is the price of 4-element timestamps; it stays "
        "small and closes as control messages complete round trips."
    )


if __name__ == "__main__":
    main()

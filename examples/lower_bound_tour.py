#!/usr/bin/env python3
"""Tour of the paper's lower bounds, run live.

Every negative result of Sections 2 and 4.3 as an executable adversary:

1. Lemma 2.1  — star, real-valued online vectors of length ≤ n−2: refuted.
2. Lemma 2.2  — star, integer online vectors of length ≤ n−1: refuted.
3. Lemma 2.3  — 2-connected graph, length ≤ n−1: refuted by flooding.
4. Lemma 2.4  — connectivity-1 graph, length ≤ |X|−1: refuted by flooding.
5. Theorem 4.4 — no 2-element *offline* timestamps on the 4-process star
   (order-dimension argument, decided exactly).

In each case the full n-element vector clock survives the same adversary —
the bounds are tight where the paper says they are.

Run:  python examples/lower_bound_tour.py
"""

from repro.lowerbounds import (
    FoldedVectorScheme,
    FullVectorScheme,
    ProjectedVectorScheme,
    execution_dimension_exceeds_2,
    find_high_dimension_execution,
    flooding_adversary,
    offline_two_element_assignment,
    star_adversary_integer,
    star_adversary_real,
    theorem_4_4_witness,
)
from repro.topology import generators
from repro.topology.properties import lemma_2_4_set_x


def main() -> None:
    n = 8

    print("1) Lemma 2.1 — real-valued online vectors on the star")
    r = star_adversary_real(
        lambda nn: ProjectedVectorScheme(nn, nn - 2, seed=1), n
    )
    print(f"   length n-2={n - 2}: refuted={r.refuted}")
    print(f"   counterexample: {r.violation.describe()}")
    ok = star_adversary_real(lambda nn: FullVectorScheme(nn), n)
    print(f"   full vector clock (length n): refuted={ok.refuted}")

    print("\n2) Lemma 2.2 — integer online vectors on the star")
    r = star_adversary_integer(
        lambda nn: FoldedVectorScheme(nn, nn - 1), n
    )
    print(f"   length n-1={n - 1}: refuted={r.refuted}")
    print(f"   counterexample: {r.violation.describe()}")

    print("\n3) Lemma 2.3 — 2-connected graphs (cycle of 7)")
    g = generators.cycle(7)
    r = flooding_adversary(lambda nn: FoldedVectorScheme(nn, nn - 1), g)
    print(f"   length n-1=6: refuted={r.refuted}")
    ok = flooding_adversary(lambda nn: FullVectorScheme(nn), g)
    print(f"   full vector clock: refuted={ok.refuted}")

    print("\n4) Lemma 2.4 — connectivity-1 graphs (star of 8)")
    g = generators.star(8)
    x = lemma_2_4_set_x(g)
    print(f"   X (non-cut vertices) = {sorted(x)}  (|X| = {len(x)} = n-1)")
    r = flooding_adversary(
        lambda nn: FoldedVectorScheme(nn, len(x) - 1), g, restrict_to_x=True
    )
    print(f"   length |X|-1={len(x) - 1}: refuted={r.refuted}")

    print("\n5) Theorem 4.4 — no 2-element offline timestamps (4-proc star)")
    w = theorem_4_4_witness()
    print(f"   fixed witness: {w.n_events} events, "
          f"order dimension > 2: {execution_dimension_exceeds_2(w)}")
    print(f"   2-element assignment exists: "
          f"{offline_two_element_assignment(w) is not None}")
    search = find_high_dimension_execution(seed=12, max_trials=1000)
    print(f"   random search rediscovers a witness at trial "
          f"{search.trials}")
    print("\n   (the star inline timestamp uses 4 elements — within 1 of "
          "this bound; size 3 remains the paper's open question)")


if __name__ == "__main__":
    main()

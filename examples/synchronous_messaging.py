#!/usr/bin/env python3
"""Scenario: synchronous messaging and component timestamps (Figure 3).

The paper's §5 contrasts its asynchronous inline timestamps with
Garg–Skawratananond's timestamps for *synchronous* messages, where a sender
blocks until the receiver acknowledges (Figure 3) and a message is one
joint event of both processes.  Messages within a star or triangle
component of an edge decomposition are then totally ordered, and component
counters can replace process counters.

This example runs our component-timestamp variant on a synchronous
client/server system and shows:

1. the synchrony difference itself (a receiver's earlier events precede
   the sender's later ones — impossible asynchronously);
2. exact causality capture with ``2d + 4``-element timestamps;
3. the size comparison against vector clocks and the asynchronous inline
   scheme on the same topology.

Run:  python examples/synchronous_messaging.py
"""

import random

from repro.sync import (
    ComponentSyncClock,
    SyncExecutionBuilder,
    SyncOracle,
    best_decomposition,
    random_sync_execution,
)
from repro.topology import generators
from repro.topology.vertex_cover import best_cover


def main() -> None:
    # 1. the synchrony effect
    g = generators.star(3)
    b = SyncExecutionBuilder(3, graph=g)
    before = b.internal(1)  # at the receiver, before the rendezvous
    b.message(0, 1)
    after = b.internal(0)  # at the sender, after the rendezvous
    oracle = SyncOracle(b.freeze())
    print("synchrony: receiver's earlier event precedes sender's later one:",
          oracle.happened_before(before, after))

    # 2. exact causality with component timestamps
    n = 12
    g = generators.star(n)
    dec = best_decomposition(g)
    ex = random_sync_execution(g, random.Random(7), steps=5 * n)
    clock = ComponentSyncClock(dec)
    clock.replay(ex)
    finalized_early = sum(1 for ev in ex.events if clock.is_final(ev))
    clock.finalize_at_termination()
    oracle = SyncOracle(ex)
    mismatches = sum(
        1
        for e in ex.events
        for f in ex.events
        if e.uid != f.uid
        and clock.timestamp(e).precedes(clock.timestamp(f))
        != oracle.happened_before(e, f)
    )
    print(f"\nsynchronous star, n={n}: {ex.n_events} events, "
          f"d={dec.d} component(s)")
    print(f"causality mismatches vs oracle: {mismatches}")
    print(f"events finalized before termination: "
          f"{finalized_early}/{ex.n_events}")

    # 3. the size comparison
    cover = best_cover(g)
    print(f"\ntimestamp sizes on the star (n={n}):")
    print(f"  vector clock:              {n} elements")
    print(f"  async inline (paper):      {2 * len(cover) + 2} elements")
    print(f"  sync component timestamps: {clock.max_elements()} elements "
          f"(bound 2d+4 = {2 * dec.d + 4})")
    from repro.sync import star_decomposition, star_triangle_decomposition

    k3 = generators.clique(3)
    print("\ntriangles help on dense graphs: K3 needs "
          f"{star_decomposition(k3).d} star components but only "
          f"{star_triangle_decomposition(k3).d} triangle component.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: rollback recovery in an IoT hub deployment.

An IoT gateway (the hub of a star) coordinates many sensor nodes.  Every
process checkpoints periodically; when the deployment fails we must roll
back to a consistent *recovery line*.  The paper's Section-1 pitch: with
inline timestamps we simply ignore events whose timestamps are not yet
finalized, losing only a little progress relative to full online vector
clocks — while shipping 4-element timestamps instead of n-element ones on
every radio message.

Run:  python examples/iot_rollback_recovery.py
"""

from repro.analysis.reports import format_table
from repro.applications.recovery import recovery_line_lag
from repro.clocks import StarInlineClock, VectorClock
from repro.sim import ConstantDelay, Simulation, UniformWorkload
from repro.topology import generators


def main() -> None:
    n = 10  # 1 gateway + 9 sensors
    graph = generators.star(n)
    sim = Simulation(
        graph,
        seed=11,
        clocks={
            "inline": StarInlineClock(n, center=0),
            "vector": VectorClock(n),
        },
        delay_model=ConstantDelay(1.0),
    )
    result = sim.run(UniformWorkload(events_per_process=30, p_local=0.25))
    ex = result.execution
    print(f"IoT deployment: {n} nodes, {ex.n_events} events, "
          f"checkpoint every 5 events")

    rows = []
    for frac in (0.2, 0.4, 0.6, 0.8, 1.0):
        t_fail = result.duration * frac
        cmp = recovery_line_lag(result, "inline", t_fail, every_k=5)
        rows.append(
            [
                f"{frac:.0%} of run",
                cmp.online_events,
                cmp.inline_events,
                cmp.lag_events,
            ]
        )

    print()
    print(
        format_table(
            ["failure time", "online recovery line (events saved)",
             "inline recovery line", "extra events lost"],
            rows,
            title="recovery lines after a crash at different times",
        )
    )
    print(
        "\nthe inline line trails the online line only by events still "
        "awaiting their round trip — the paper's 'negligible' gap — while "
        f"every message carried 2 piggybacked integers instead of {n}."
    )


if __name__ == "__main__":
    main()

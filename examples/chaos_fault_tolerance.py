#!/usr/bin/env python3
"""Scenario: surviving a bad week in production.

The paper's model assumes reliable channels; real deployments get bursty
packet loss, duplicated datagrams, partitions that heal, and nodes that
crash and come back.  This example runs the chaos harness over those
scenarios with inline timestamps attached and shows two things:

1. *Safety is unconditional* — every timestamp that finalizes agrees with
   happened-before on the surviving execution, and timestamps finalized
   before a crash read back unchanged from the clock-state checkpoint.
2. *Liveness is bought with the reliable control transport* — with
   fire-and-forget control messages a lost round trip means the event only
   finalizes at termination, while sequence numbers + acks +
   retransmission keep the fraction finalized *during the run* high.

Run:  python examples/chaos_fault_tolerance.py
"""

from repro.analysis.reports import format_table
from repro.clocks import StarInlineClock
from repro.faults import default_scenarios, run_chaos
from repro.sim import RetryPolicy
from repro.topology import generators


def main() -> None:
    n = 8
    graph = generators.star(n)
    factories = {"inline-star": lambda: StarInlineClock(n)}
    scenarios = default_scenarios(n)

    sweeps = {
        "fire-and-forget": run_chaos(
            graph, factories, scenarios=scenarios,
            events_per_process=15, seed=1, reliable=False,
        ),
        "reliable": run_chaos(
            graph, factories, scenarios=scenarios,
            events_per_process=15, seed=1, reliable=True,
            retry=RetryPolicy(timeout=4.0, backoff=1.5, max_retries=4),
        ),
    }

    print(f"chaos sweep on a star of {n} processes, inline timestamps\n")
    rows = []
    for scenario in scenarios:
        raw = next(c for c in sweeps["fire-and-forget"].cells
                   if c.scenario == scenario.name)
        rel = next(c for c in sweeps["reliable"].cells
                   if c.scenario == scenario.name)
        rows.append([
            scenario.name,
            "OK" if raw.ok and rel.ok else "FAIL",
            f"{raw.finalized_fraction:.2f}",
            f"{rel.finalized_fraction:.2f}",
            rel.retransmissions,
            rel.duplicates_suppressed,
        ])
    print(format_table(
        ["scenario", "invariants", "finalized (f&f)", "finalized (reliable)",
         "retx", "dups supp"],
        rows,
    ))

    every_ok = all(sweep.ok for sweep in sweeps.values())
    print()
    print("every finalized timestamp agrees with happened-before, and "
          "crash checkpoints")
    print(f"replay finalized timestamps unchanged: "
          f"{'yes' if every_ok else 'NO — bug!'}")
    loss10_rel = next(c for c in sweeps["reliable"].cells
                      if c.scenario == "control-loss-10")
    print(f"under 10% control loss the reliable transport keeps "
          f"{loss10_rel.finalized_fraction:.0%} of events")
    print("finalized during the run — losses surface as retransmissions, "
          "not as termination-only timestamps.")


if __name__ == "__main__":
    main()

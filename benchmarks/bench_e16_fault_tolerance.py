"""E16 — Fault tolerance of inline timestamps under chaos (robustness).

The paper's system model assumes reliable channels; this experiment asks
what survives when that assumption is dropped.  Claims reproduced in
shape: (a) under every structured fault scenario (bursty loss,
duplication, a healing partition, crash-recovery) finalized inline
timestamps still agree exactly with happened-before on the surviving
execution, and timestamps finalized before a crash read back unchanged
from the clock-state checkpoint; (b) the reliable control transport
(positive acks + retransmission) keeps online finalization high —
>= 95% of events finalize *during the run* even with 10% control-message
loss — where fire-and-forget control messages degrade to
termination-only finalization.
"""

import pytest

from repro.analysis import (
    finalization_latency_cdf,
    format_table,
    summarize_reliability,
)
from repro.clocks import StarInlineClock
from repro.faults import (
    ChaosScenario,
    GilbertElliottLoss,
    default_scenarios,
    run_chaos,
)
from repro.sim import RetryPolicy
from repro.topology import generators

from functools import partial

from _common import bench_jobs, print_header

N = 8
EVENTS = 15
SEED = 1


def _factories(n):
    # partial of a top-level class stays picklable for run_chaos(jobs=N)
    return {"inline-star": partial(StarInlineClock, n)}


def _sweep(reliable):
    g = generators.star(N)
    return run_chaos(
        g,
        _factories(N),
        scenarios=default_scenarios(N),
        events_per_process=EVENTS,
        seed=SEED,
        reliable=reliable,
        jobs=bench_jobs(),
    )


def test_e16_chaos_invariants(benchmark):
    """Every scenario × algorithm cell upholds causality + permanence."""
    report = benchmark.pedantic(lambda: _sweep(reliable=True),
                                rounds=1, iterations=1)
    print_header("E16: chaos sweep, reliable control transport "
                 f"(star n={N}, {EVENTS} events/proc)")
    from repro.faults import ROW_HEADER
    print(format_table(ROW_HEADER, report.rows()))
    assert report.ok, [f"{c.scenario}×{c.clock}" for c in report.failures()]
    # crash scenarios exercised the checkpoint/restore permanence check
    assert any(c.scenario == "crash-recovery" for c in report.cells)


def test_e16_reliable_transport_ablation(benchmark):
    """Reliable vs fire-and-forget control under the default scenarios."""
    def both():
        return _sweep(reliable=True), _sweep(reliable=False)

    rel, raw = benchmark.pedantic(both, rounds=1, iterations=1)
    rel_by = {c.scenario: c for c in rel.cells}
    raw_by = {c.scenario: c for c in raw.cells}
    rows = [
        [s, round(raw_by[s].finalized_fraction, 3),
         round(rel_by[s].finalized_fraction, 3),
         rel_by[s].retransmissions, rel_by[s].abandoned]
        for s in rel_by
    ]
    print_header("E16b: online-finalization coverage, fire-and-forget vs "
                 "reliable")
    print(format_table(
        ["scenario", "frac (fire&forget)", "frac (reliable)", "retx",
         "abandoned"],
        rows,
    ))
    assert raw.ok and rel.ok
    # the acceptance criterion: >= 95% finalized during the run under 10%
    # control loss with the reliable transport
    assert rel_by["control-loss-10"].finalized_fraction >= 0.95
    # reliability helps wherever control messages can actually be lost;
    # at the lossless baseline the two transports differ only by rng-stream
    # noise (ack datagrams consume delay samples), so compare within noise
    for s in ("burst-loss-30", "control-loss-10", "partition-heal"):
        assert (rel_by[s].finalized_fraction
                > raw_by[s].finalized_fraction), s
    assert abs(rel_by["baseline"].finalized_fraction
               - raw_by["baseline"].finalized_fraction) < 0.05
    # lossless baseline needs no retransmissions at all
    assert rel_by["baseline"].retransmissions == 0


def test_e16_latency_cdf_and_accounting(benchmark):
    """The latency CDF plateau equals online coverage; counters reconcile."""
    from repro.sim import Simulation, UniformWorkload

    g = generators.star(N)
    scenario = ChaosScenario(
        name="burst", fault=GilbertElliottLoss(scope="control"))

    def run():
        sim = Simulation(
            g,
            seed=SEED,
            clocks={"inline-star": StarInlineClock(N)},
            fault_model=scenario.fault,
            control_retry=RetryPolicy(),
        )
        return sim.run(UniformWorkload(events_per_process=EVENTS))

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    cdf = finalization_latency_cdf(res, "inline-star")
    summary = summarize_reliability(res, "inline-star")
    print_header("E16c: finalization-latency CDF under bursty control loss")
    tail = cdf[-1] if cdf else (0.0, 0.0)
    print(f"plateau: {tail[1]:.3f} of all events finalized online "
          f"(max latency {tail[0]:.2f})")
    print(f"transport: {summary.retransmissions} retransmissions, "
          f"{summary.duplicates_suppressed} duplicates suppressed, "
          f"{summary.abandoned} abandoned "
          f"(delivery success {summary.delivery_success:.3f})")
    assert cdf, "some events must finalize during the run"
    fracs = [f for _, f in cdf]
    assert fracs == sorted(fracs) and fracs[-1] <= 1.0 + 1e-12
    # dropped control datagrams were retransmitted, not lost forever
    assert summary.dropped_control > 0
    assert summary.retransmissions > 0
    assert summary.delivery_success >= 0.95

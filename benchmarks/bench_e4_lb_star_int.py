"""E4 — Lemma 2.2: online integer vectors need length ≥ n on a star.

One entry more than the real-valued case: the adversary prepends
``P = (M+2)·n`` computation events at the centre, forcing some coordinate
above the radial maximum, which frees it to pick a radial victim even for
length n−1.
"""

import pytest

from repro.analysis.reports import format_table
from repro.lowerbounds import (
    DroppedCoordinateScheme,
    FoldedVectorScheme,
    FullVectorScheme,
    star_adversary_integer,
)

from _common import print_header


def run_sweep(n_values=(3, 4, 6, 8, 10)):
    rows = []
    for n in n_values:
        for name, factory, s in [
            ("folded(n-1)", lambda nn: FoldedVectorScheme(nn, nn - 1), n - 1),
            ("dropped-centre", lambda nn: DroppedCoordinateScheme(nn, 0), n - 1),
            ("folded(n/2)", lambda nn: FoldedVectorScheme(nn, max(1, nn // 2)),
             max(1, n // 2)),
            ("full-vector", lambda nn: FullVectorScheme(nn), n),
        ]:
            result = star_adversary_integer(factory, n)
            rows.append(
                (
                    n,
                    s,
                    name,
                    result.refuted,
                    result.violation.kind.value if result.violation else "-",
                    result.execution.n_events,
                )
            )
    return rows


def test_e4_lemma22(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_header("E4: Lemma 2.2 adversary (star, integer vectors)")
    print(
        format_table(
            ["n", "length s", "scheme", "refuted", "violation", "events"],
            rows,
        )
    )
    for n, s, name, refuted, _v, _e in rows:
        if name == "full-vector":
            assert not refuted
        else:
            assert refuted, f"{name} with s={s} <= n-1={n - 1} must be refuted"


def test_e4_integer_needs_one_more_than_real(benchmark):
    """The gap between Lemmas 2.1 and 2.2: length n-1 integer vectors fail
    on the star where the (hypothetical) real bound would allow them."""

    def run():
        n = 8
        return star_adversary_integer(
            lambda nn: FoldedVectorScheme(nn, nn - 1), n
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.refuted
    assert result.vector_length == 7  # n-1 integer entries: not enough
    print_header("E4b: n-1 integer entries refuted (n=8)")
    print(" ", result.violation.describe())

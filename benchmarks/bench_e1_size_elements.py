"""E1 — Timestamp element counts (Theorem 4.2; Section 3's "4 elements").

Claim: on any topology the inline timestamp holds at most ``2·|VC| + 2``
elements — exactly 4 on a star regardless of ``n`` — while the online
vector clock needs ``n``.  Measured from real executions across the
topology suite.
"""

import pytest

from repro.analysis.reports import format_table
from repro.clocks import CoverInlineClock, VectorClock, replay
from repro.topology.vertex_cover import best_cover

from _common import parallel_map, print_header, sample_execution, \
    topology_suite


def _size_cell(payload):
    """One (n, topology) sweep cell — module-level for parallel_map."""
    name, graph, seed = payload
    cover = best_cover(graph)
    ex = sample_execution(graph, seed=seed, steps=6 * graph.n_vertices)
    inline, vector = replay(
        ex,
        [
            CoverInlineClock(graph, tuple(cover)),
            VectorClock(graph.n_vertices),
        ],
    )
    return {
        "n": graph.n_vertices,
        "topology": name,
        "|VC|": len(cover),
        "inline_max": inline.max_elements(),
        "inline_mean": round(inline.mean_elements(), 2),
        "bound 2|VC|+2": 2 * len(cover) + 2,
        "vector": vector.max_elements(),
        "inline_wins": inline.max_elements() < vector.max_elements(),
    }


def build_rows(n_values=(8, 16, 32), seed=1, jobs=None):
    cells = [
        (name, graph, seed)
        for n in n_values
        for name, graph in topology_suite(n, seed=seed).items()
    ]
    return parallel_map(_size_cell, cells, jobs=jobs)


def test_e1_table(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print_header("E1: timestamp elements — inline (2|VC|+2) vs vector (n)")
    print(
        format_table(
            list(rows[0].keys()), [list(r.values()) for r in rows]
        )
    )
    for r in rows:
        # Theorem 4.2 bound always holds
        assert r["inline_max"] <= r["bound 2|VC|+2"]
        # vector clock is always n
        assert r["vector"] == r["n"]
        # stars: exactly 4 elements regardless of n (Section 3)
        if r["topology"] == "star":
            assert r["inline_max"] == 4
            assert r["inline_wins"]
        # the paper's crossover: small covers win, clique-like covers lose
        if r["|VC|"] < r["n"] / 2 - 1:
            assert r["inline_wins"]


def test_e1_star_constant_in_n(benchmark):
    """The headline: star inline size is constant while vector grows."""

    def measure():
        sizes = {}
        for n in (4, 8, 16, 32, 64):
            from repro.topology import generators

            graph = generators.star(n)
            ex = sample_execution(graph, seed=2, steps=4 * n)
            inline, vector = replay(
                ex, [CoverInlineClock(graph, (0,)), VectorClock(n)]
            )
            sizes[n] = (inline.max_elements(), vector.max_elements())
        return sizes

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_header("E1b: star — inline constant (4) vs vector linear (n)")
    for n, (i, v) in sorted(sizes.items()):
        print(f"  n={n:>3}  inline={i}  vector={v}")
        assert i == 4
        assert v == n

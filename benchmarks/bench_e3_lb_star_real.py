"""E3 — Lemma 2.1: online real-valued vectors need length ≥ n−1 on a star.

The executable adversary refutes every candidate scheme of length ≤ n−2
(finding the concurrent pair it wrongly orders) while the full vector clock
survives the same construction.
"""

import pytest

from repro.analysis.reports import format_table
from repro.lowerbounds import (
    FullVectorScheme,
    ProjectedVectorScheme,
    star_adversary_real,
)

from _common import print_header


def run_sweep(n_values=(4, 6, 8, 12, 16)):
    rows = []
    for n in n_values:
        for s in sorted({1, n // 2, n - 2}):
            if s < 1:
                continue
            result = star_adversary_real(
                lambda nn, s=s: ProjectedVectorScheme(nn, s, seed=n), n
            )
            rows.append(
                (
                    n,
                    s,
                    "projected-real",
                    result.refuted,
                    result.violation.kind.value if result.violation else "-",
                )
            )
        full = star_adversary_real(lambda nn: FullVectorScheme(nn), n)
        rows.append((n, n, "full-vector", full.refuted, "-"))
    return rows


def test_e3_lemma21(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_header("E3: Lemma 2.1 adversary (star, real-valued vectors)")
    print(
        format_table(
            ["n", "length s", "scheme", "refuted", "violation"], rows
        )
    )
    for n, s, scheme, refuted, _v in rows:
        if scheme == "full-vector":
            assert not refuted, f"full vector clock must survive (n={n})"
        elif s <= n - 2:
            assert refuted, f"scheme of length {s} <= n-2 must be refuted"


def test_e3_violation_is_on_predicted_pair(benchmark):
    """The refutation lands exactly on the pair the proof constructs."""

    def run():
        return star_adversary_real(
            lambda nn: ProjectedVectorScheme(nn, nn - 2, seed=5), 10
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.refuted
    assert result.predicted_pair is not None
    v = result.violation
    assert v is not None and {v.e, v.f} == set(result.predicted_pair)
    print_header("E3b: concrete Lemma 2.1 counterexample (n=10, s=8)")
    print(" ", v.describe())

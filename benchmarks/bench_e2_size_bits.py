"""E2 — Bit-level sizes (Theorem 4.3) and the |VC| < n/2 − 1 crossover.

Claim: an inline timestamp needs at most
``(2|VC|+1)·log₂(K+1) + log₂ n`` bits vs ``n·log₂(K+1)`` for the vector
clock, so the inline scheme wins whenever the cover is small relative to
``n``.  The analytic model is swept over (n, K); measured executions
confirm the analytic bound per event.  Includes the cover-selection
ablation (exact vs greedy vs matching) from DESIGN.md.
"""

import math
import random

import pytest

from repro.analysis.reports import format_table
from repro.analysis.size_model import (
    compare_sizes,
    crossover_cover_size,
    inline_bits,
    vector_bits,
)
from repro.clocks import CoverInlineClock, replay_one
from repro.topology import generators
from repro.topology.vertex_cover import (
    exact_minimum_cover,
    greedy_degree_cover,
    matching_cover,
)

from _common import print_header, sample_execution


def analytic_rows():
    rows = []
    for n in (8, 16, 32, 64, 128):
        for k in (100, 10_000):
            for vc in (1, 2, n // 4, n // 2):
                rows.append(compare_sizes(n, k, vc))
    return rows


def test_e2_analytic_sweep(benchmark):
    rows = benchmark.pedantic(analytic_rows, rounds=1, iterations=1)
    print_header("E2: analytic bit sizes (Theorem 4.3)")
    print(
        format_table(
            ["n", "K", "|VC|", "inline_bits", "vector_bits", "inline_wins"],
            [
                [
                    r.n_processes,
                    r.max_events,
                    r.cover_size,
                    r.inline_bits,
                    r.vector_bits,
                    r.inline_smaller,
                ]
                for r in rows
            ],
        )
    )
    for r in rows:
        # the element-count crossover implies the bit-count one for large n
        if r.cover_size < r.n_processes / 2 - 1 and r.n_processes >= 8:
            assert r.inline_smaller, r
        if r.cover_size >= r.n_processes / 2:
            assert not r.inline_smaller, r


def test_e2_crossover_table(benchmark):
    def build():
        return {
            n: crossover_cover_size(n, max_events=1000)
            for n in (8, 16, 32, 64, 128, 256)
        }

    crossovers = benchmark.pedantic(build, rounds=1, iterations=1)
    print_header("E2b: largest winning cover size per n (K=1000)")
    for n, c in sorted(crossovers.items()):
        paper = n / 2 - 1
        print(f"  n={n:>4}  measured_crossover={c:>4}  paper n/2-1={paper:.1f}")
        # shape: crossover tracks n/2 - 1 within the id-bits correction
        assert abs(c - paper) <= 2


def test_e2_measured_bits_respect_bound(benchmark):
    """Per-event measured bit cost never exceeds the Theorem 4.3 bound."""

    def measure():
        out = []
        for n in (8, 16):
            graph = generators.star(n)
            ex = sample_execution(graph, seed=4, steps=6 * n)
            clock = CoverInlineClock(graph, (0,))
            asg = replay_one(ex, clock)
            k = ex.max_events_per_process()
            bound = inline_bits(n, k, 1)
            worst = max(
                clock.timestamp_bits(ts, k) for _eid, ts in asg.items()
            )
            out.append((n, k, worst, bound, vector_bits(n, k)))
        return out

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_header("E2c: measured bits vs Theorem 4.3 bound (star)")
    print(
        format_table(
            ["n", "K", "measured_max_bits", "thm4.3_bound", "vector_bits"],
            rows,
        )
    )
    for n, k, worst, bound, vec in rows:
        assert worst <= bound
        if n >= 8:
            assert bound < vec


def test_e2_cover_selection_ablation(benchmark):
    """Ablation: smaller covers (exact) give smaller timestamps."""

    def measure():
        rng = random.Random(7)
        graph = generators.erdos_renyi(20, 0.15, rng)
        rows = []
        for name, fn in [
            ("exact", exact_minimum_cover),
            ("greedy", greedy_degree_cover),
            ("matching-2approx", matching_cover),
        ]:
            cover = fn(graph)
            rows.append((name, len(cover), 2 * len(cover) + 2))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_header("E2d: cover-selection ablation (random n=20 graph)")
    print(format_table(["method", "|VC|", "timestamp elements"], rows))
    sizes = {name: size for name, size, _el in rows}
    assert sizes["exact"] <= sizes["greedy"]
    assert sizes["exact"] <= sizes["matching-2approx"]
    assert sizes["matching-2approx"] <= 2 * sizes["exact"]

"""E15 — Artificial dependencies vs timestamp size (paper §5).

The paper: "in the message-passing case as well, we can introduce
artificial dependencies by disallowing the use of certain communication
channels in order to decrease the vertex cover size."  This experiment
quantifies that trade-off with the same *logical* workload deployed two
ways:

- **direct**: all-to-all traffic on a clique of ``n`` workers — minimum
  cover ``n-1``, so inline timestamps are *larger* than vector clocks, but
  no artificial ordering is introduced;
- **relayed**: the same logical messages routed through a hub (a star of
  ``n+1`` processes) — cover 1, 4-element inline timestamps, but the hub's
  serialization causally orders every logical message against all later
  ones, exactly like the replica in the paper's causal-memory example.

Measured: timestamp sizes and the fraction of (sender event, unrelated
delivery event) pairs that become causally ordered.
"""

import random
from typing import Dict, List, Optional, Tuple

import pytest

from repro.analysis.reports import format_table
from repro.clocks import CoverInlineClock, VectorClock
from repro.core import HappenedBeforeOracle
from repro.core.events import Event, EventId, Message, ProcessId
from repro.sim import Simulation
from repro.sim.workload import SimHandle, Workload
from repro.topology import generators
from repro.topology.vertex_cover import best_cover

from _common import print_header


class _LogicalTraffic(Workload):
    """The same logical (src, dst, time) message schedule, deployed either
    directly or through a relay hub (process ``n`` in relay mode)."""

    def __init__(
        self,
        n_workers: int,
        messages_per_worker: int,
        seed: int,
        relay: bool,
    ) -> None:
        self.n = n_workers
        self.k = messages_per_worker
        self.seed = seed
        self.relay = relay
        #: logical id -> (send EventId, final receive EventId)
        self.endpoints: Dict[int, List[Optional[EventId]]] = {}
        self._tag: Dict[int, Tuple[int, ProcessId]] = {}

    def setup(self, sim: SimHandle) -> None:
        rng = random.Random(self.seed)  # private: identical in both modes
        logical = 0
        for src in range(self.n):
            t = 0.0
            for _ in range(self.k):
                t += rng.expovariate(1.0) + 1e-9
                dst = rng.choice([d for d in range(self.n) if d != src])
                self._schedule(sim, logical, src, dst, t)
                logical += 1

    def _schedule(self, sim, logical, src, dst, t) -> None:
        def go() -> None:
            first_hop = self.n if self.relay else dst
            ev = sim.do_send(src, first_hop)
            assert ev.msg_id is not None
            self.endpoints[logical] = [ev.eid, None]
            self._tag[ev.msg_id] = (logical, dst)

        sim.schedule(t, go)

    def on_deliver(self, sim: SimHandle, msg: Message, recv: Event) -> None:
        tag = self._tag.pop(msg.msg_id, None)
        if tag is None:
            return
        logical, dst = tag
        if self.relay and msg.dst == self.n:
            fwd = sim.do_send(self.n, dst)
            assert fwd.msg_id is not None
            self._tag[fwd.msg_id] = (logical, dst)
        else:
            self.endpoints[logical][1] = recv.eid


def run_mode(relay: bool, n_workers=6, k=5, seed=3):
    if relay:
        graph = generators.star(n_workers + 1)
        # relabel: workers 0..n-1, hub = n  -> build star with hub last
        from repro.topology.graph import CommunicationGraph

        graph = CommunicationGraph(
            n_workers + 1, [(i, n_workers) for i in range(n_workers)]
        )
    else:
        graph = generators.clique(n_workers)
    n = graph.n_vertices
    cover = tuple(best_cover(graph))
    sim = Simulation(
        graph,
        seed=seed,
        clocks={
            "inline": CoverInlineClock(graph, cover),
            "vector": VectorClock(n),
        },
    )
    wl = _LogicalTraffic(n_workers, k, seed=seed * 7 + 1, relay=relay)
    res = sim.run(wl)
    oracle = HappenedBeforeOracle(res.execution)

    ordered = 0
    total = 0
    ids = sorted(wl.endpoints)
    for i in ids:
        send_i = wl.endpoints[i][0]
        for j in ids:
            if i == j:
                continue
            recv_j = wl.endpoints[j][1]
            if send_i is None or recv_j is None:
                continue
            total += 1
            if oracle.happened_before(send_i, recv_j):
                ordered += 1
    return {
        "deployment": "relayed via hub" if relay else "direct clique",
        "processes": n,
        "|VC|": len(cover),
        "inline el": res.assignments["inline"].max_elements(),
        "vector el": res.assignments["vector"].max_elements(),
        "ordered frac": round(ordered / total, 3) if total else 0.0,
        "_exact": res.assignments["inline"].validate(oracle).characterizes,
    }


def test_e15_tradeoff(benchmark):
    def measure():
        return [run_mode(relay=False), run_mode(relay=True)]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_header("E15: artificial dependencies vs timestamp size (§5)")
    display = [
        {k: v for k, v in r.items() if not k.startswith("_")} for r in rows
    ]
    print(format_table(list(display[0].keys()),
                       [list(r.values()) for r in display]))
    direct, relayed = rows
    assert direct["_exact"] and relayed["_exact"]
    # the trade: relaying shrinks the cover (and the inline timestamp) ...
    assert relayed["|VC|"] == 1
    assert relayed["inline el"] == 4
    assert direct["inline el"] > direct["vector el"]  # clique: inline loses
    # ... but introduces artificial causal order between unrelated traffic
    # (the direct clique already has substantial *real* ordering from
    # chained messages; the relay adds strictly more on top)
    assert relayed["ordered frac"] > 1.2 * direct["ordered frac"]

"""E11 — Communication and processing overhead of every scheme (derived).

Measures, on identical executions: per-message piggyback elements, control
message counts, per-event processing time, and per-event storage.  This is
the systems-facing comparison the paper's size theorems imply: the inline
scheme piggybacks |VC|+2 elements and pays small control messages; the
vector clock piggybacks n; Lamport piggybacks 1 but answers are lossy;
the encoded clock piggybacks a single growing big integer.
"""

import random

import pytest

from repro.analysis.reports import format_table
from repro.baselines import ClusterClock, EncodedClock, PlausibleClock
from repro.clocks import (
    CoverInlineClock,
    LamportClock,
    StarInlineClock,
    VectorClock,
)
from repro.sim import ConstantDelay, Simulation, UniformWorkload
from repro.topology import generators

from _common import print_header


def overhead_rows(n=12, events=25, seed=0):
    g = generators.star(n)
    clocks = {
        "lamport": LamportClock(n),
        "vector": VectorClock(n),
        "inline-star": StarInlineClock(n),
        "inline-cover": CoverInlineClock(g, (0,)),
        "plausible(3)": PlausibleClock(n, 3),
        "encoded": EncodedClock(n),
        "cluster": ClusterClock(n),
    }
    sim = Simulation(
        g, seed=seed, clocks=clocks, delay_model=ConstantDelay(1.0)
    )
    res = sim.run(UniformWorkload(events_per_process=events, p_local=0.3))
    msgs = max(1, res.app_messages)
    rows = []
    for name in clocks:
        stats = res.stats[name]
        asg = res.assignments[name]
        rows.append(
            {
                "scheme": name,
                "payload el/msg": round(stats.app_payload_elements / msgs, 2),
                "control msgs": stats.control_messages,
                "control el": stats.control_elements,
                "max ts elements": asg.max_elements(),
                "mean ts elements": round(asg.mean_elements(), 2),
            }
        )
    return res, rows


def test_e11_overhead_table(benchmark):
    res, rows = benchmark.pedantic(overhead_rows, rounds=1, iterations=1)
    print_header("E11: per-scheme communication/storage overhead (star n=12)")
    print(format_table(list(rows[0].keys()),
                       [list(r.values()) for r in rows]))
    by = {r["scheme"]: r for r in rows}
    # piggyback ordering: lamport(1) < inline(3) < vector(n)
    assert by["lamport"]["payload el/msg"] == 1
    assert by["inline-star"]["payload el/msg"] == 2
    assert by["inline-cover"]["payload el/msg"] == 3  # (src, mctr, mpre[1])
    assert by["vector"]["payload el/msg"] == 12
    # only the inline schemes pay control traffic
    for name in ("lamport", "vector", "plausible(3)", "encoded", "cluster"):
        assert by[name]["control msgs"] == 0
    assert by["inline-star"]["control msgs"] > 0
    # storage: inline max is 4, vector is n
    assert by["inline-star"]["max ts elements"] == 4
    assert by["vector"]["max ts elements"] == 12


def test_e11_processing_time(benchmark):
    """Per-event processing micro-benchmark: replaying a fixed execution."""
    from repro.core.random_executions import random_execution
    from repro.clocks import replay

    g = generators.star(16)
    ex = random_execution(
        g, random.Random(1), steps=600, deliver_all=True
    )

    def replay_all():
        return replay(
            ex,
            [
                LamportClock(16),
                VectorClock(16),
                StarInlineClock(16),
                CoverInlineClock(g, (0,)),
            ],
        )

    assignments = benchmark(replay_all)
    assert all(len(a) == ex.n_events for a in assignments)


def test_e11_comparison_time(benchmark):
    """Timestamp-comparison micro-benchmark (the query-side cost)."""
    from repro.core.random_executions import random_execution
    from repro.clocks import replay_one

    g = generators.star(16)
    ex = random_execution(g, random.Random(2), steps=300, deliver_all=True)
    asg = replay_one(ex, StarInlineClock(16))
    ids = [ev.eid for ev in ex.all_events()]

    def compare_all():
        count = 0
        for e in ids:
            for f in ids:
                if e != f and asg.precedes(e, f):
                    count += 1
        return count

    ordered = benchmark(compare_all)
    assert ordered > 0


def test_e11_comparison_cost_scaling(benchmark):
    """Query-side scaling: star inline comparisons touch O(1) scalars while
    vector comparisons scan all n entries — the gap grows with n."""
    import time

    from repro.core.random_executions import random_execution
    from repro.clocks import replay

    def measure():
        rows = []
        for n in (16, 64, 128):
            g = generators.star(n)
            ex = random_execution(
                g, random.Random(3), steps=400, deliver_all=True
            )
            inline, vector = replay(ex, [StarInlineClock(n), VectorClock(n)])
            ids = [ev.eid for ev in ex.all_events()][:150]

            def time_asg(asg):
                t0 = time.perf_counter()
                acc = 0
                for e in ids:
                    for f in ids:
                        if e != f and asg.precedes(e, f):
                            acc += 1
                return time.perf_counter() - t0

            t_inline = time_asg(inline)
            t_vector = time_asg(vector)
            rows.append((n, t_inline * 1e3, t_vector * 1e3,
                         t_vector / max(t_inline, 1e-12)))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_header("E11b: comparison cost scaling (150x150 pairwise queries)")
    print(
        format_table(
            ["n", "inline ms", "vector ms", "vector/inline"],
            [(n, round(a, 2), round(b, 2), round(r, 2))
             for n, a, b, r in rows],
        )
    )
    # the ratio must grow with n (vector compares are O(n), inline O(1))
    ratios = [r for _n, _a, _b, r in rows]
    assert ratios[-1] > ratios[0]

"""Shared helpers for the benchmark/experiment harness.

Each ``bench_e*.py`` module regenerates one of the paper's quantitative
claims (see DESIGN.md's per-experiment index): it computes the table or
series, prints it (visible with ``pytest -s`` or via ``run_all.py``),
asserts the claim's *shape* (who wins, by roughly what factor, where the
crossover falls), and wraps a representative computation in
pytest-benchmark for timing.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.bench import cell_seed, default_jobs as bench_jobs, parallel_map
from repro.clocks import (
    ClockAlgorithm,
    CoverInlineClock,
    LamportClock,
    StarInlineClock,
    VectorClock,
    replay,
)
from repro.core import HappenedBeforeOracle
from repro.core.random_executions import random_execution
from repro.topology import generators
from repro.topology.graph import CommunicationGraph
from repro.topology.vertex_cover import best_cover


def topology_suite(n: int, seed: int = 0) -> Dict[str, CommunicationGraph]:
    """The benchmark topology families at size ~n."""
    rng = random.Random(seed)
    return {
        "star": generators.star(n),
        "double_star": generators.double_star(n // 2 - 1, n - n // 2 - 1),
        "cycle": generators.cycle(n),
        "tree": generators.random_tree(n, rng),
        "bipartite": generators.complete_bipartite(max(1, n // 4), n - max(1, n // 4)),
        "random(p=0.15)": generators.erdos_renyi(n, 0.15, rng),
        "clique": generators.clique(min(n, 12)),
    }


def sample_execution(graph: CommunicationGraph, seed: int, steps: int = 200):
    return random_execution(
        graph, random.Random(seed), steps=steps, deliver_all=True
    )


__all__ = [
    "bench_jobs",
    "cell_seed",
    "parallel_map",
    "print_header",
    "sample_execution",
    "topology_suite",
]


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)

"""E13 — Synchronous computations (paper §5, Figure 3 context).

The paper contrasts its inline timestamps with Garg–Skawratananond's
synchronous-message timestamps (``d + 4`` elements over a star/triangle
edge decomposition).  This experiment runs our component-timestamp variant
of that idea on the synchronous joint-event model:

- exactness against the synchronous ground-truth oracle;
- element counts: ``2d + 4`` (component scheme) vs ``n`` (vector clocks)
  vs the asynchronous inline ``2|VC| + 2`` on the same topology;
- the decomposition ablation: triangles can beat pure stars on dense
  graphs (``d ≤ |VC|`` there), while on triangle-free graphs both collapse
  to the cover.
"""

import random

import pytest

from repro.analysis.reports import format_table
from repro.sync.component_clock import ComponentSyncClock
from repro.sync.decomposition import (
    best_decomposition,
    star_decomposition,
    star_triangle_decomposition,
)
from repro.sync.model import SyncOracle, random_sync_execution
from repro.topology import generators
from repro.topology.vertex_cover import best_cover

from _common import print_header


def suite():
    return {
        "star(8)": generators.star(8),
        "star(24)": generators.star(24),
        "double_star": generators.double_star(3, 4),
        "triangle": generators.clique(3),
        "clique(6)": generators.clique(6),
        "cycle(8)": generators.cycle(8),
        "bipartite(2,6)": generators.complete_bipartite(2, 6),
    }


def run_rows():
    rows = []
    for name, g in suite().items():
        n = g.n_vertices
        dec = best_decomposition(g)
        ex = random_sync_execution(g, random.Random(1), steps=5 * n)
        clock = ComponentSyncClock(dec)
        clock.replay(ex)
        clock.finalize_at_termination()
        oracle = SyncOracle(ex)
        exact = all(
            clock.timestamp(e).precedes(clock.timestamp(f))
            == oracle.happened_before(e, f)
            for e in ex.events
            for f in ex.events
            if e.uid != f.uid
        )
        cover = best_cover(g)
        rows.append(
            {
                "graph": name,
                "n": n,
                "d": dec.d,
                "|VC|": len(cover),
                "sync max el": clock.max_elements(),
                "bound 2d+4": 2 * dec.d + 4,
                "async inline": 2 * len(cover) + 2,
                "vector": n,
                "exact": exact,
            }
        )
    return rows


def test_e13_component_timestamps(benchmark):
    rows = benchmark.pedantic(run_rows, rounds=1, iterations=1)
    print_header("E13: synchronous component timestamps vs alternatives")
    print(format_table(list(rows[0].keys()),
                       [list(r.values()) for r in rows]))
    for r in rows:
        assert r["exact"]
        assert r["sync max el"] <= r["bound 2d+4"]
        if r["graph"].startswith("star"):
            assert r["d"] == 1  # constant-size timestamps on stars
            assert r["sync max el"] <= 6


def test_e13_decomposition_ablation(benchmark):
    """Triangles vs pure stars: d comparison across densities."""

    def sweep():
        rows = []
        rng = random.Random(9)
        for name, g in [
            ("triangle", generators.clique(3)),
            ("clique(5)", generators.clique(5)),
            ("clique(7)", generators.clique(7)),
            ("cycle(7)", generators.cycle(7)),
            ("random(10,.4)", generators.erdos_renyi(10, 0.4, rng)),
        ]:
            star_d = star_decomposition(g).d
            tri_d = star_triangle_decomposition(g).d
            best_d = best_decomposition(g).d
            rows.append((name, g.n_vertices, star_d, tri_d, best_d))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header("E13b: decomposition ablation (pure stars vs +triangles)")
    print(
        format_table(
            ["graph", "n", "d (stars only)", "d (greedy triangles)",
             "d (best of both)"],
            rows,
        )
    )
    # triangles strictly win on K3 ...
    k3 = [r for r in rows if r[0] == "triangle"][0]
    assert k3[3] < k3[2]
    # ... but greedy triangle extraction can fragment the leftover graph
    # and *lose* (an honest negative result this ablation documents);
    # best_decomposition always takes the minimum of the two.
    for _name, _n, sd, td, bd in rows:
        assert bd == min(sd, td)


def test_e13_finalization_fraction(benchmark):
    """Inline-style W entries finalize quickly under steady messaging."""

    def measure():
        g = generators.star(10)
        dec = star_decomposition(g)
        ex = random_sync_execution(
            g, random.Random(4), steps=80, p_internal=0.5
        )
        clock = ComponentSyncClock(dec)
        clock.replay(ex)
        final_before_term = sum(
            1 for ev in ex.events if clock.is_final(ev)
        )
        clock.finalize_at_termination()
        return final_before_term, ex.n_events

    final, total = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_header("E13c: fraction of sync events finalized before termination")
    print(f"  {final}/{total} = {final / total:.2%}")
    assert final > 0


def test_e13_timed_finalization_latency(benchmark):
    """Rendezvous-timed simulation: finalization latency of the component
    clock scales with how long a process waits for its next message."""
    from repro.analysis.latency import percentile
    from repro.sync.timed import simulate_sync

    def sweep():
        g = generators.star(8)
        rows = []
        for p_internal in (0.1, 0.5, 0.8):
            res = simulate_sync(
                g, actions_per_process=20, p_internal=p_internal, seed=6
            )
            lats = sorted(res.finalization_latencies().values())
            mean = sum(lats) / len(lats) if lats else 0.0
            rows.append(
                (
                    p_internal,
                    res.fraction_finalized_during_run(),
                    round(mean, 3),
                    round(percentile(lats, 0.95), 3),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header("E13d: rendezvous-timed finalization latency (star n=8)")
    print(
        format_table(
            ["p_internal", "finalized frac", "mean latency", "p95"],
            rows,
        )
    )
    # messaging-heavy runs finalize faster than internal-heavy runs
    assert rows[0][2] <= rows[-1][2] + 1e-9

"""E10 — Figure 4: the sequencer architecture.

Claims reproduced in shape:

- sequencers form a vertex cover, so inline timestamps have
  ``2·#sequencers + 2`` elements however many clients/servers exist — the
  vector clock grows linearly with the deployment;
- the data-direct optimization removes all bulk data from the sequencers
  while they keep handling (small) metadata;
- the store is causally consistent throughout.
"""

import pytest

from repro.analysis.reports import format_table
from repro.applications.causal_kv import (
    StoreConfig,
    run_store,
    verify_causal_reads,
)

from _common import print_header


def scale_rows():
    rows = []
    for n_clients in (4, 8, 16):
        cfg = StoreConfig(
            n_sequencers=2,
            n_servers=3,
            n_clients=n_clients,
            ops_per_client=6,
            seed=n_clients,
        )
        run = run_store(cfg)
        ok = verify_causal_reads(run) == []
        rows.append(
            (
                cfg.total_processes(),
                n_clients,
                run.inline_max_elements,
                run.vector_elements,
                ok,
            )
        )
    return rows


def test_e10_timestamp_scaling(benchmark):
    rows = benchmark.pedantic(scale_rows, rounds=1, iterations=1)
    print_header("E10: Figure-4 store — timestamp size vs deployment size")
    print(
        format_table(
            ["total processes", "clients", "inline elements",
             "vector elements", "causally consistent"],
            rows,
        )
    )
    inline_sizes = {r[2] for r in rows}
    assert len(inline_sizes) == 1  # constant in deployment size
    assert inline_sizes == {2 * 2 + 2}
    for total, _c, inline, vector, ok in rows:
        assert vector == total  # grows with the deployment
        assert ok
    assert rows[-1][3] > rows[0][3]


def test_e10_sequencer_count_tradeoff(benchmark):
    """More sequencers => bigger timestamps but more routing capacity."""

    def sweep():
        rows = []
        for n_seq in (1, 2, 4):
            cfg = StoreConfig(
                n_sequencers=n_seq,
                n_servers=4,
                n_clients=8,
                ops_per_client=5,
                seed=7,
            )
            run = run_store(cfg)
            rows.append(
                (
                    n_seq,
                    run.inline_max_elements,
                    2 * n_seq + 2,
                    run.vector_elements,
                    verify_causal_reads(run) == [],
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header("E10b: timestamp size vs number of sequencers")
    print(
        format_table(
            ["sequencers", "inline elements", "bound 2S+2",
             "vector elements", "consistent"],
            rows,
        )
    )
    for n_seq, inline, bound, _v, ok in rows:
        assert inline <= bound
        assert ok
    assert rows[0][1] < rows[-1][1]  # grows with sequencer count


def test_e10_traffic_optimization(benchmark):
    def run():
        cfg = StoreConfig(
            n_sequencers=2, n_servers=4, n_clients=8, ops_per_client=6, seed=5
        )
        return run_store(cfg)

    run_result = benchmark.pedantic(run, rounds=1, iterations=1)
    t = run_result.traffic
    print_header("E10c: sequencer traffic, baseline vs data-direct (Fig. 4)")
    print(
        format_table(
            ["routing", "sequencer data hops", "sequencer meta hops"],
            [
                ["baseline (all via sequencers)",
                 t.baseline_sequencer_data_load, t.sequencer_meta_hops],
                ["optimized (data direct)",
                 t.optimized_sequencer_data_load,
                 t.sequencer_meta_hops + t.sequencer_data_hops],
            ],
        )
    )
    assert t.baseline_sequencer_data_load > 0
    assert t.optimized_sequencer_data_load == 0

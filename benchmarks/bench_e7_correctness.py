"""E7 — Theorems 3.1 / 4.1: the inline comparison is exactly happened-before.

Exhaustive pairwise validation across the topology suite, plus the
accuracy/size frontier against the lossy baselines (Lamport, plausible) and
characterizing baselines (vector, encoded, cluster).
"""

import random

import pytest

from repro.analysis.reports import format_table
from repro.baselines import ClusterClock, EncodedClock, PlausibleClock
from repro.clocks import (
    CoverInlineClock,
    LamportClock,
    StarInlineClock,
    VectorClock,
    replay,
)
from repro.core import HappenedBeforeOracle
from repro.topology.vertex_cover import best_cover

from _common import parallel_map, print_header, sample_execution, \
    topology_suite


def _validate_cell(payload):
    """One (topology, seed) sweep cell — module-level for parallel_map."""
    name, graph, cover, seed = payload
    nn = graph.n_vertices
    ex = sample_execution(graph, seed=seed, steps=5 * nn)
    oracle = HappenedBeforeOracle(ex)
    algos = [
        CoverInlineClock(graph, cover),
        VectorClock(nn),
        EncodedClock(nn),
        ClusterClock(nn),
        LamportClock(nn),
        PlausibleClock(nn, max(1, len(cover))),
    ]
    rows = []
    for asg in replay(ex, algos):
        report = asg.validate(oracle)
        rows.append(
            {
                "topology": name,
                "seed": seed,
                "scheme": asg.algorithm.name,
                "events": report.n_events,
                "consistent": report.is_consistent,
                "exact": report.characterizes,
                "fp_rate": round(report.false_positive_rate, 4),
                "max_el": asg.max_elements(),
            }
        )
    return rows


def validate_suite(n=10, seeds=(1, 2, 3), jobs=None):
    cells = [
        (name, graph, tuple(best_cover(graph)), seed)
        for name, graph in topology_suite(n, seed=0).items()
        for seed in seeds
    ]
    rows = []
    for batch in parallel_map(_validate_cell, cells, jobs=jobs):
        rows.extend(batch)
    return rows


def test_e7_exactness(benchmark):
    rows = benchmark.pedantic(validate_suite, rounds=1, iterations=1)
    print_header("E7: exhaustive pairwise validation vs happened-before")
    # print one aggregated row per (topology, scheme)
    agg = {}
    for r in rows:
        key = (r["topology"], r["scheme"])
        cur = agg.setdefault(
            key,
            {"events": 0, "consistent": True, "exact": True, "fp": 0.0,
             "max_el": 0},
        )
        cur["events"] += r["events"]
        cur["consistent"] &= r["consistent"]
        cur["exact"] &= r["exact"]
        cur["fp"] = max(cur["fp"], r["fp_rate"])
        cur["max_el"] = max(cur["max_el"], r["max_el"])
    print(
        format_table(
            ["topology", "scheme", "events", "consistent", "exact",
             "max fp_rate", "max elements"],
            [
                [t, s, v["events"], v["consistent"], v["exact"], v["fp"],
                 v["max_el"]]
                for (t, s), v in sorted(agg.items())
            ],
        )
    )
    characterizing = {"inline-cover", "vector", "encoded-prime", "cluster"}
    for r in rows:
        assert r["consistent"], r
        if r["scheme"] in characterizing:
            assert r["exact"], r
    # lossy schemes really are lossy somewhere
    lamport_fp = [r["fp_rate"] for r in rows if r["scheme"] == "lamport"]
    assert max(lamport_fp) > 0


def test_e7_star_theorem31(benchmark):
    """Star algorithm (Theorem 3.1) validated on larger stars."""

    def run():
        from repro.topology import generators

        out = []
        for n in (6, 12, 24):
            graph = generators.star(n)
            ex = sample_execution(graph, seed=9, steps=5 * n)
            asg = replay(ex, [StarInlineClock(n)])[0]
            out.append((n, ex.n_events, asg.validate().characterizes))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("E7b: Theorem 3.1 on stars")
    print(format_table(["n", "events", "exact"], rows))
    for _n, _e, exact in rows:
        assert exact

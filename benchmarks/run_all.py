"""Run the full E1–E16 benchmark suite with optional process parallelism.

The drivers are pytest modules, so this is a thin launcher around

    pytest benchmarks/ --benchmark-only -s

that additionally exports ``REPRO_BENCH_JOBS`` so every driver's sweep —
the topology × seed grids, the chaos scenarios — fans out over that many
worker processes via :func:`repro.bench.parallel_map`.  Results are
identical to a serial run; only the wall clock changes.

With ``--fabric DIR`` the suite instead runs through the resumable
work-queue fabric (:mod:`repro.fabric`): one cell per driver module,
completion records stored in ``DIR`` so an interrupted overnight run
(``^C``, SIGTERM, OOM-killed host) restarted with ``--resume`` skips
every experiment that already passed.  Failed modules are never stored,
so they rerun on resume.

Usage::

    python benchmarks/run_all.py                 # serial, every experiment
    python benchmarks/run_all.py --jobs 4        # 4 workers per sweep
    python benchmarks/run_all.py -k e7 --jobs 2  # just E7
    python benchmarks/run_all.py --fabric out/bench-store --resume
"""

from __future__ import annotations

import argparse
import fnmatch
import os
import pathlib
import subprocess
import sys
from typing import Optional, Sequence


def _fabric_main(args: argparse.Namespace, here: pathlib.Path) -> int:
    sys.path.insert(0, str(here.parent / "src"))
    from repro.fabric import (
        CellFailed,
        FabricInterrupted,
        ResultStore,
        run_fabric,
    )
    from repro.fabric.drivers import bench_module_specs

    modules = sorted(p.name for p in here.glob("bench_e*.py"))
    if args.keyword:
        modules = [
            m for m in modules
            if fnmatch.fnmatch(m, f"*{args.keyword}*")
        ]
    if not modules:
        print(f"run_all: no driver matches {args.keyword!r}",
              file=sys.stderr)
        return 2
    os.environ["REPRO_BENCH_JOBS"] = str(max(1, args.jobs))
    specs = bench_module_specs(modules)
    store = ResultStore(args.fabric)
    try:
        report = run_fabric(specs, store, resume=args.resume)
    except FabricInterrupted as exc:
        print(
            f"run_all: interrupted with {exc.remaining} experiment(s) "
            f"remaining; rerun with --fabric {args.fabric} --resume",
            file=sys.stderr,
        )
        return 130
    except CellFailed as exc:
        print(f"run_all: {exc}", file=sys.stderr)
        if exc.errors:
            print(exc.errors[-1], file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"run_all: {exc}", file=sys.stderr)
        return 2
    for result in report.iter_results():
        print(f"ok {result['module']}")
    print(
        f"run_all: {len(report.keys)} experiment(s) complete "
        f"({report.stats['cells_resumed']} resumed); store digest "
        f"{store.digest(report.keys)[:16]}"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes per sweep (default: serial)",
    )
    parser.add_argument(
        "-k", dest="keyword", default=None,
        help="pytest -k expression to select experiments (e.g. 'e7 or e16')",
    )
    parser.add_argument(
        "--fabric", metavar="DIR", default=None,
        help="run one fabric cell per driver module, storing completion "
        "records in DIR (resumable with --resume)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip driver modules already completed in the --fabric store",
    )
    args = parser.parse_args(argv)

    here = pathlib.Path(__file__).resolve().parent
    if args.resume and not args.fabric:
        parser.error("--resume requires --fabric DIR")
    if args.fabric:
        return _fabric_main(args, here)

    env = dict(os.environ)
    env["REPRO_BENCH_JOBS"] = str(max(1, args.jobs))
    src = str(here.parent / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )

    cmd = [sys.executable, "-m", "pytest", str(here), "--benchmark-only",
           "-s", "-q"]
    if args.keyword:
        cmd += ["-k", args.keyword]
    return subprocess.call(cmd, env=env, cwd=str(here.parent))


if __name__ == "__main__":
    sys.exit(main())

"""Run the full E1–E16 benchmark suite with optional process parallelism.

The drivers are pytest modules, so this is a thin launcher around

    pytest benchmarks/ --benchmark-only -s

that additionally exports ``REPRO_BENCH_JOBS`` so every driver's sweep —
the topology × seed grids, the chaos scenarios — fans out over that many
worker processes via :func:`repro.bench.parallel_map`.  Results are
identical to a serial run; only the wall clock changes.

Usage::

    python benchmarks/run_all.py                 # serial, every experiment
    python benchmarks/run_all.py --jobs 4        # 4 workers per sweep
    python benchmarks/run_all.py -k e7 --jobs 2  # just E7
"""

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys
from typing import Optional, Sequence


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes per sweep (default: serial)",
    )
    parser.add_argument(
        "-k", dest="keyword", default=None,
        help="pytest -k expression to select experiments (e.g. 'e7 or e16')",
    )
    args = parser.parse_args(argv)

    here = pathlib.Path(__file__).resolve().parent
    env = dict(os.environ)
    env["REPRO_BENCH_JOBS"] = str(max(1, args.jobs))
    src = str(here.parent / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )

    cmd = [sys.executable, "-m", "pytest", str(here), "--benchmark-only",
           "-s", "-q"]
    if args.keyword:
        cmd += ["-k", args.keyword]
    return subprocess.call(cmd, env=env, cwd=str(here.parent))


if __name__ == "__main__":
    sys.exit(main())

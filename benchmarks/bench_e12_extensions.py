"""E12 — Extension experiments beyond the paper's core claims.

Three studies the paper's discussion motivates but does not evaluate:

- **E12a (Charron-Bost, reference [2]):** the classic dimension-``n``
  construction the paper generalizes.  We build the execution, certify the
  embedded crown ``S⁰ₙ`` against the oracle, and thereby certify that *no*
  ``(n-1)``-element vector assignment — online or offline — exists for it.
- **E12b (Singhal–Kshemkalyani, reference [21] context):** differential
  vector-clock transmission vs the inline schemes' fixed piggyback: SK
  compresses messages but still stores ``n``-element timestamps and needs
  FIFO channels; the inline scheme bounds *both* message and storage cost.
- **E12c (cut-maintenance ablation, DESIGN.md):** incremental
  finalized-cut monitoring vs recompute-from-scratch — identical cuts,
  very different asymptotics.
"""

import random
import time

import pytest

from repro.analysis.reports import format_table
from repro.applications.monitor import FinalizedCutMonitor
from repro.clocks import CoverInlineClock, SKVectorClock, VectorClock
from repro.core import HappenedBeforeOracle
from repro.core.cuts import max_consistent_cut_within
from repro.core.random_executions import random_execution
from repro.lowerbounds import (
    certified_dimension_lower_bound,
    charron_bost_execution,
    verify_crown,
)
from repro.sim import Simulation, UniformWorkload
from repro.topology import generators

from _common import print_header


def test_e12a_charron_bost(benchmark):
    def sweep():
        rows = []
        for n in (3, 4, 6, 8, 10):
            ex, witness = charron_bost_execution(n)
            oracle = HappenedBeforeOracle(ex)
            rows.append(
                (
                    n,
                    ex.n_events,
                    verify_crown(oracle, witness),
                    witness.dimension_lower_bound,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header("E12a: Charron-Bost executions — certified dimension ≥ n")
    print(
        format_table(
            ["n", "events", "crown verified", "dimension lower bound"],
            rows,
        )
    )
    for n, _e, verified, bound in rows:
        assert verified
        assert bound == n
    assert certified_dimension_lower_bound(5) == 5


def test_e12b_sk_vs_inline_payload(benchmark):
    """Per-message transmission cost: SK diffs vs inline fixed piggyback."""

    def measure():
        rows = []
        for n in (8, 16, 32):
            g = generators.star(n)
            sim = Simulation(
                g,
                seed=3,
                clocks={
                    "vector": VectorClock(n),
                    "vector-sk": SKVectorClock(n),
                    "inline": CoverInlineClock(g, (0,)),
                },
                fifo_app_channels=True,
            )
            res = sim.run(
                UniformWorkload(events_per_process=20, p_local=0.2)
            )
            msgs = max(1, res.app_messages)
            row = {"n": n}
            for name in ("vector", "vector-sk", "inline"):
                stats = res.stats[name]
                row[f"{name} el/msg"] = round(
                    stats.app_payload_elements / msgs, 2
                )
            row["inline ts elements"] = res.assignments[
                "inline"
            ].max_elements()
            row["sk ts elements"] = res.assignments[
                "vector-sk"
            ].max_elements()
            rows.append(row)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_header("E12b: transmission vs storage — SK diff clocks vs inline")
    print(format_table(list(rows[0].keys()),
                       [list(r.values()) for r in rows]))
    for r in rows:
        n = r["n"]
        # SK compresses messages below the full vector
        assert r["vector-sk el/msg"] < r["vector el/msg"] == n
        # but its *storage* stays n while inline storage stays 4
        assert r["sk ts elements"] == n
        assert r["inline ts elements"] == 4
        # inline piggyback is constant (src, mctr, mpre[1])
        assert r["inline el/msg"] == 3


def test_e12c_monitor_ablation(benchmark):
    """Incremental cut maintenance vs oracle recomputation."""

    def run_ablation():
        rng = random.Random(5)
        g = generators.star(8)
        ex = random_execution(g, rng, steps=300, deliver_all=True)
        oracle = HappenedBeforeOracle(ex)
        ids = [ev.eid for ev in ex.all_events()]
        rng.shuffle(ids)

        # incremental
        t0 = time.perf_counter()
        monitor = FinalizedCutMonitor(8)
        for ev in ex.delivery_order():
            send_eid = ex.send_of(ev).eid if ev.is_receive else None
            monitor.on_event(ev, send_eid)
        for eid in ids:
            monitor.on_finalized(eid)
        incr_time = time.perf_counter() - t0
        incr_cut = monitor.cut

        # recompute-from-scratch after every finalization
        t0 = time.perf_counter()
        finalized = set()
        cut = None
        for eid in ids:
            finalized.add(eid)
            cut = max_consistent_cut_within(
                oracle, lambda e: e in finalized
            )
        recompute_time = time.perf_counter() - t0
        return incr_cut, cut, incr_time, recompute_time, ex.n_events

    incr_cut, recompute_cut, t_incr, t_rec, n_events = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    print_header("E12c: cut maintenance ablation (300-event run)")
    print(f"  final cuts identical: {incr_cut == recompute_cut}")
    print(f"  incremental: {t_incr * 1e3:.1f} ms total "
          f"({t_incr / n_events * 1e6:.1f} us/event)")
    print(f"  recompute:   {t_rec * 1e3:.1f} ms total "
          f"({t_rec / n_events * 1e6:.1f} us/event)")
    print(f"  speedup: {t_rec / max(t_incr, 1e-9):.1f}x")
    assert incr_cut == recompute_cut
    assert t_incr < t_rec  # the ablation's point

"""E5 — Lemmas 2.3 / 2.4: flooding lower bounds on general graphs.

2-connected graphs force online vector length ``n``; connectivity-1 graphs
force length ``|X|`` (the non-cut vertices).  The slow-channel flooding
adversary refutes every shorter candidate while the full vector clock
survives.
"""

import pytest

from repro.analysis.reports import format_table
from repro.lowerbounds import (
    FoldedVectorScheme,
    FullVectorScheme,
    flooding_adversary,
)
from repro.topology import generators
from repro.topology.properties import lemma_2_4_set_x, vertex_connectivity

from _common import print_header


def lemma23_rows():
    graphs = {
        "cycle(6)": generators.cycle(6),
        "cycle(9)": generators.cycle(9),
        "wheel(7)": generators.wheel(7),
        "clique(5)": generators.clique(5),
        "theta(1,2)": generators.theta_graph([1, 2]),
        "K(2,4)": generators.complete_bipartite(2, 4),
    }
    rows = []
    for name, g in graphs.items():
        n = g.n_vertices
        kappa = vertex_connectivity(g)
        short = flooding_adversary(lambda nn: FoldedVectorScheme(nn, nn - 1), g)
        full = flooding_adversary(lambda nn: FullVectorScheme(nn), g)
        rows.append(
            (name, n, kappa, n - 1, short.refuted, not full.refuted)
        )
    return rows


def lemma24_rows():
    graphs = {
        "star(6)": generators.star(6),
        "star(10)": generators.star(10),
        "double_star(3,3)": generators.double_star(3, 3),
        "path(6)": generators.path(6),
        "caterpillar(3,2)": generators.caterpillar(3, 2),
    }
    rows = []
    for name, g in graphs.items():
        x = lemma_2_4_set_x(g)
        s = len(x) - 1
        short = flooding_adversary(
            lambda nn, s=s: FoldedVectorScheme(nn, s), g, restrict_to_x=True
        )
        full = flooding_adversary(
            lambda nn: FullVectorScheme(nn), g, restrict_to_x=True
        )
        rows.append(
            (name, g.n_vertices, len(x), s, short.refuted, not full.refuted)
        )
    return rows


def test_e5_lemma23(benchmark):
    rows = benchmark.pedantic(lemma23_rows, rounds=1, iterations=1)
    print_header("E5a: Lemma 2.3 — 2-connected graphs need length n")
    print(
        format_table(
            ["graph", "n", "kappa", "tested s", "short refuted", "full survives"],
            rows,
        )
    )
    for name, n, kappa, s, refuted, full_ok in rows:
        assert kappa >= 2
        assert refuted, f"{name}: length {s} must be refuted"
        assert full_ok, f"{name}: full vector clock must survive"


def test_e5_timed_slow_channel_argument(benchmark):
    """The quantitative half of the proofs: with victim channels slower
    than 2δD, flooding among the other n-1 processes completes strictly
    before any contact with the victim (run with real virtual-time delays
    on the simulator)."""
    from repro.sim import slow_victim_flood

    def sweep():
        rows = []
        for name, g, victim in [
            ("cycle(6)", generators.cycle(6), 0),
            ("cycle(9)", generators.cycle(9), 4),
            ("wheel(7)", generators.wheel(7), 2),
            ("clique(5)", generators.clique(5), 1),
        ]:
            t = slow_victim_flood(g, victim=victim, delta=1.0)
            rows.append(
                (
                    name,
                    victim,
                    t.flood_bound,
                    round(max(t.completion_times.values()), 2),
                    round(t.first_victim_contact, 2)
                    if t.first_victim_contact is not None
                    else "-",
                    t.separation_holds,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header("E5c: timed slow-channel adversary (δ=1, victim > 2δD)")
    print(
        format_table(
            ["graph", "victim", "δ·D bound", "flood completes by",
             "first victim contact", "separation holds"],
            rows,
        )
    )
    for _name, _v, bound, completes, contact, sep in rows:
        assert sep
        assert completes <= bound + 0.1


def test_e5_lemma24(benchmark):
    rows = benchmark.pedantic(lemma24_rows, rounds=1, iterations=1)
    print_header("E5b: Lemma 2.4 — connectivity-1 graphs need length |X|")
    print(
        format_table(
            ["graph", "n", "|X|", "tested s", "short refuted", "full survives"],
            rows,
        )
    )
    for name, n, x_size, s, refuted, full_ok in rows:
        assert refuted, f"{name}: length {s} = |X|-1 must be refuted"
        assert full_ok

    # the paper's star observation: |X| = n-1
    star_row = [r for r in rows if r[0] == "star(10)"][0]
    assert star_row[2] == 9

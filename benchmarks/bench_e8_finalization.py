"""E8 — Finalization latency of inline timestamps (Sections 1, 6, 7).

Claims reproduced in shape: cover-process events finalize instantly;
other events finalize after one round trip with each adjacent cover
process; higher message rates (more round trips) finalize faster; the
fraction-finalized curve trails the execution and catches up.  Includes the
control-transport ablation (dedicated FIFO channels vs piggybacking) from
DESIGN.md.
"""

import pytest

from repro.analysis.latency import (
    finalized_fraction_curve,
    mean_inflight_events,
    summarize_latencies,
)
from repro.analysis.reports import format_series, format_table
from repro.clocks import CoverInlineClock, StarInlineClock, VectorClock
from repro.sim import (
    ConstantDelay,
    ControlTransport,
    Simulation,
    UniformWorkload,
)
from repro.topology import generators

from _common import print_header


def run_star(seed=0, n=8, p_local=0.3, transport=ControlTransport.EAGER,
             events=30):
    g = generators.star(n)
    sim = Simulation(
        g,
        seed=seed,
        clocks={"inline": StarInlineClock(n), "vector": VectorClock(n)},
        delay_model=ConstantDelay(1.0),
        control_transport=transport,
    )
    return sim.run(UniformWorkload(events_per_process=events, p_local=p_local))


def test_e8_latency_distribution(benchmark):
    res = benchmark.pedantic(run_star, rounds=1, iterations=1)
    s_inline = summarize_latencies(res, "inline")
    s_vector = summarize_latencies(res, "vector")
    print_header("E8: finalization latency (star n=8, delay=1.0)")
    print(
        format_table(
            ["scheme", "finalized frac", "mean", "median", "p95", "max"],
            [
                ["vector (online)", s_vector.finalized_fraction,
                 s_vector.mean, s_vector.median, s_vector.p95,
                 s_vector.maximum],
                ["inline", s_inline.finalized_fraction, s_inline.mean,
                 s_inline.median, s_inline.p95, s_inline.maximum],
            ],
        )
    )
    assert s_vector.mean == 0.0
    assert s_inline.mean > 0
    # round-trip bound: with unit delays a control round trip is ~2 time
    # units after the *next send*; centre events are instantaneous.
    centre_lats = [
        lat
        for eid, lat in res.finalization_latencies("inline").items()
        if eid.proc == 0
    ]
    assert all(lat == 0 for lat in centre_lats)


def test_e8_rate_sweep(benchmark):
    """More communication => faster finalization (smaller latency), and the
    analytic round-trip model tracks the measured radial latency."""
    from repro.analysis import expected_star_finalization_latency

    def sweep():
        rows = []
        for p_local in (0.0, 0.5, 0.8):
            res = run_star(seed=3, p_local=p_local, events=30)
            s = summarize_latencies(res, "inline")
            radial = [
                lat
                for eid, lat in res.finalization_latencies("inline").items()
                if eid.proc != 0
            ]
            radial_mean = sum(radial) / len(radial) if radial else 0.0
            model = expected_star_finalization_latency(
                rate=1.0, p_local=p_local, delay=1.0
            )
            rows.append(
                (1 - p_local, s.finalized_fraction, s.mean, radial_mean,
                 model, mean_inflight_events(res, "inline"))
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header("E8b: message-rate sweep (send fraction vs latency)")
    print(
        format_table(
            ["send fraction", "finalized frac", "mean latency",
             "radial mean", "model 1/λs+2d", "mean unfinalized events"],
            rows,
        )
    )
    # chatty systems finalize more of their events
    assert rows[0][1] >= rows[-1][1]
    # the analytic model tracks the measured radial latency (loose band:
    # pending sends already in flight make the measurement smaller)
    for _f, _ff, _mean, radial_mean, model, _infl in rows:
        assert 0 < radial_mean <= 2.0 * model


def test_e8_fraction_curve(benchmark):
    res = benchmark.pedantic(run_star, rounds=1, iterations=1,
                             kwargs={"seed": 4})
    curve = finalized_fraction_curve(res, "inline", n_points=12)
    print_header("E8c: fraction of occurred events already finalized")
    print(format_series(curve, "time", "finalized/occurred"))
    # the curve should stay in a healthy band and be high mid-run
    mid = [frac for t, frac in curve if 0.2 * res.duration < t < 0.9 * res.duration]
    assert all(f > 0.3 for f in mid)


def test_e8_transport_ablation(benchmark):
    """Dedicated control channels finalize more/faster than piggybacking."""

    def compare():
        eager = run_star(seed=6, transport=ControlTransport.EAGER)
        piggy = run_star(seed=6, transport=ControlTransport.PIGGYBACK)
        return (
            summarize_latencies(eager, "inline"),
            summarize_latencies(piggy, "inline"),
            eager.stats["inline"].control_messages,
            piggy.stats["inline"].control_messages,
        )

    s_eager, s_piggy, ctrl_eager, ctrl_piggy = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    print_header("E8d: control transport ablation (eager vs piggyback)")
    print(
        format_table(
            ["transport", "finalized frac", "mean latency", "control msgs"],
            [
                ["eager FIFO channel", s_eager.finalized_fraction,
                 s_eager.mean, ctrl_eager],
                ["piggyback", s_piggy.finalized_fraction, s_piggy.mean,
                 ctrl_piggy],
            ],
        )
    )
    # piggybacking can only delay finalization (the paper's caveat)
    assert s_piggy.finalized_fraction <= s_eager.finalized_fraction + 1e-9
    # and transports no more control messages than were emitted
    assert ctrl_piggy <= ctrl_eager


def test_e8_general_graph(benchmark):
    """Cover algorithm on a double star: non-cover events need round trips
    with ALL adjacent cover processes."""

    def run():
        g = generators.double_star(3, 3)
        sim = Simulation(
            g,
            seed=8,
            clocks={"inline": CoverInlineClock(g, (0, 1))},
            delay_model=ConstantDelay(1.0),
        )
        return sim.run(UniformWorkload(events_per_process=25, p_local=0.2))

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    s = summarize_latencies(res, "inline")
    print_header("E8e: finalization on double star (cover {0,1})")
    print(f"  finalized={s.finalized_fraction:.3f} mean={s.mean:.3f} "
          f"p95={s.p95:.3f}")
    for eid, lat in res.finalization_latencies("inline").items():
        if eid.proc in (0, 1):
            assert lat == 0
    assert s.mean > 0

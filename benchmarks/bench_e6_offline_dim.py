"""E6 — Theorem 4.4: no 2-element offline timestamps on the 4-process star.

Computational reproduction via order dimension: the fixed witness execution
(and randomly rediscovered ones) have dimension > 2, hence no 2-element
assignment exists; simple executions do get constructive 2-element
assignments, showing dimension is exactly the obstruction.  The paper's
companion observation — the star inline timestamp uses 4 elements, within 1
of the feasible lower bound (3 remains open) — frames the shape assertions.
"""

import random

import pytest

from repro.analysis.reports import format_table
from repro.lowerbounds import (
    execution_dimension_exceeds_2,
    find_high_dimension_execution,
    offline_two_element_assignment,
    random_star_execution,
    theorem_4_4_witness,
)

from _common import print_header


def test_e6_witness(benchmark):
    def check():
        ex = theorem_4_4_witness()
        return (
            ex.n_events,
            execution_dimension_exceeds_2(ex),
            offline_two_element_assignment(ex) is None,
        )

    n_events, dim_gt2, no_assignment = benchmark.pedantic(
        check, rounds=1, iterations=1
    )
    print_header("E6: Theorem 4.4 witness (4-process star)")
    print(f"  witness events: {n_events}")
    print(f"  order dimension > 2: {dim_gt2}")
    print(f"  2-element offline assignment impossible: {no_assignment}")
    assert dim_gt2
    assert no_assignment


def test_e6_prevalence(benchmark):
    """How common are dimension->2 executions?  A random search finds them
    quickly — the obstruction is generic, not a corner case."""

    def survey():
        rng = random.Random(0)
        total, high = 0, 0
        first_hit = None
        for trial in range(300):
            ex = random_star_execution(rng, n=4, steps=12)
            total += 1
            if execution_dimension_exceeds_2(ex):
                high += 1
                if first_hit is None:
                    first_hit = trial + 1
        return total, high, first_hit

    total, high, first_hit = benchmark.pedantic(survey, rounds=1, iterations=1)
    print_header("E6b: prevalence of dimension>2 star executions (12 steps)")
    print(f"  {high}/{total} random executions exceed dimension 2")
    print(f"  first witness at trial {first_hit}")
    assert high > 0
    assert first_hit is not None and first_hit < 100


def test_e6_constructive_converse(benchmark):
    """Executions of dimension <= 2 DO admit 2-element offline vectors."""

    def survey():
        rng = random.Random(1)
        rows = []
        for _ in range(50):
            ex = random_star_execution(rng, n=4, steps=10)
            assignment = offline_two_element_assignment(ex)
            rows.append(
                (
                    ex.n_events,
                    execution_dimension_exceeds_2(ex),
                    assignment is not None,
                )
            )
        return rows

    rows = benchmark.pedantic(survey, rounds=1, iterations=1)
    realizable = sum(1 for _n, _d, ok in rows if ok)
    print_header("E6c: dimension <= 2 <=> 2-element assignment exists")
    print(f"  {realizable}/{len(rows)} random executions realizable in 2 elements")
    for _n, exceeds, ok in rows:
        assert ok == (not exceeds)

"""E14 — The online/inline/offline size spectrum, plus the HLC contrast.

Ties the whole size story together on identical workloads:

- **online** vector clocks: n elements (lower bounds E3–E5 say this is
  forced);
- **inline** (the paper): 2|VC|+2 elements after a round-trip delay;
- **offline**: order-dimension-many elements (heuristic realizers), often
  2–4 — but the Charron-Bost executions push it back up to n, showing the
  offline bound is workload-dependent, not a free lunch;
- **HLC** (reference [12]): constant 2 elements by *exploiting physical
  time*, at the cost of losing characterization (false positives), the
  trade-off §5's "Exploiting Physical Time" paragraph describes.
"""

import random

import pytest

from repro.analysis.reports import format_table
from repro.baselines.hlc import HybridLogicalClock, counter_time_source
from repro.clocks import CoverInlineClock, VectorClock, replay
from repro.core.random_executions import random_execution
from repro.lowerbounds.charron_bost import charron_bost_execution
from repro.lowerbounds.realizers import (
    offline_vector_timestamps,
    verify_offline_vectors,
)
from repro.topology import generators
from repro.topology.vertex_cover import best_cover

from _common import print_header


def spectrum_rows():
    rows = []
    rng = random.Random(11)
    for name, graph in [
        ("star(8)", generators.star(8)),
        ("star(16)", generators.star(16)),
        ("double_star(3,4)", generators.double_star(3, 4)),
        ("tree(10)", generators.random_tree(10, rng)),
    ]:
        n = graph.n_vertices
        ex = random_execution(
            rng=random.Random(5), graph=graph, steps=4 * n, deliver_all=True
        )
        cover = best_cover(graph)
        inline, vector, hlc = replay(
            ex,
            [
                CoverInlineClock(graph, tuple(cover)),
                VectorClock(n),
                HybridLogicalClock(n, counter_time_source()),
            ],
        )
        offline = offline_vector_timestamps(ex)
        assert offline is not None and verify_offline_vectors(ex, offline)
        k = len(next(iter(offline.values())))
        hlc_report = hlc.validate()
        rows.append(
            {
                "workload": name,
                "n": n,
                "online (vector)": vector.max_elements(),
                "inline (paper)": inline.max_elements(),
                "offline (dim≈)": k,
                "hlc": hlc.max_elements(),
                "hlc fp rate": round(hlc_report.false_positive_rate, 3),
            }
        )
    return rows


def test_e14_spectrum(benchmark):
    rows = benchmark.pedantic(spectrum_rows, rounds=1, iterations=1)
    print_header("E14: online / inline / offline / physical-time spectrum")
    print(format_table(list(rows[0].keys()),
                       [list(r.values()) for r in rows]))
    for r in rows:
        # shape claims: the offline heuristic always beats the forced
        # online size; inline stays within its bound (and wins on stars);
        # HLC is constant-size but lossy.
        assert r["offline (dim≈)"] < r["online (vector)"]
        assert r["inline (paper)"] <= r["online (vector)"]
        if r["workload"].startswith("star"):
            assert r["inline (paper)"] == 4
        assert r["hlc"] == 2
        assert r["hlc fp rate"] > 0  # lossy: orders some concurrent pairs


def test_e14_charron_bost_closes_the_gap(benchmark):
    """Adversarial workloads erase the offline advantage: dimension = n."""

    def measure():
        out = []
        for n in (3, 4, 5):
            ex, witness = charron_bost_execution(n)
            vectors = offline_vector_timestamps(ex)
            assert vectors is not None
            out.append((n, len(next(iter(vectors.values()))),
                        witness.dimension_lower_bound))
        return out

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_header("E14b: Charron-Bost workloads — offline needs n again")
    print(format_table(["n", "offline vector length",
                        "certified lower bound"], rows))
    for n, k, bound in rows:
        assert bound == n
        assert k >= n

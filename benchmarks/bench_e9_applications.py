"""E9 — Applications with inline timestamps (Section 6).

Claims reproduced in shape:

- predicate detection with inline timestamps succeeds on the finalized cut
  and agrees with the online answer; mid-run it may lag but never answers
  differently once finalized;
- rollback recovery from inline knowledge yields a recovery line at most a
  small number of events behind the online line ("somewhat earlier ...
  negligible");
- replay and concurrent-update detection from inline timestamps match the
  ground truth exactly.
"""

import pytest

from repro.analysis.reports import format_table
from repro.applications.concurrent_updates import conflict_resolution_status
from repro.applications.predicate import (
    detect_conjunctive,
    detect_with_inline,
    oracle_comparator,
)
from repro.applications.recovery import recovery_line_lag
from repro.applications.replay import is_causal_schedule, replay_schedule
from repro.clocks import StarInlineClock, VectorClock
from repro.core import HappenedBeforeOracle
from repro.core.events import EventId
from repro.sim import ConstantDelay, Simulation, UniformWorkload
from repro.topology import generators

from _common import print_header


def run_sim(seed=0, n=6, events=20):
    g = generators.star(n)
    sim = Simulation(
        g,
        seed=seed,
        clocks={"inline": StarInlineClock(n), "vector": VectorClock(n)},
        delay_model=ConstantDelay(1.0),
    )
    return sim.run(UniformWorkload(events_per_process=events, p_local=0.3))


def test_e9_recovery_lag(benchmark):
    def sweep():
        res = run_sim(seed=1)
        rows = []
        for frac in (0.25, 0.5, 0.75, 1.0):
            cmp = recovery_line_lag(
                res, "inline", failure_time=res.duration * frac, every_k=4
            )
            rows.append(
                (round(frac, 2), cmp.online_events, cmp.inline_events,
                 cmp.lag_events)
            )
        return res, rows

    res, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header("E9: recovery-line lag, inline vs online knowledge")
    print(
        format_table(
            ["failure at (frac of run)", "online line (events)",
             "inline line (events)", "lag"],
            rows,
        )
    )
    total = res.execution.n_events
    for _f, online, inline, lag in rows:
        assert 0 <= lag
        # the paper's 'negligible' claim: lag is a small fraction of the run
        assert lag <= 0.5 * total
    # lines grow with failure time
    assert rows[-1][1] >= rows[0][1]


def test_e9_predicate_detection(benchmark):
    def run():
        res = run_sim(seed=2)
        oracle = HappenedBeforeOracle(res.execution)
        ex = res.execution
        # predicate: 'process has executed at least 3 events' at p1..p3
        marks = {
            p: [i for i in range(3, len(ex.events_at(p)) + 1)]
            for p in (1, 2, 3)
        }
        online = detect_conjunctive(oracle_comparator(oracle), marks)
        inline_final = detect_with_inline(
            res.assignments["inline"],
            marks,
            finalized={ev.eid for ev in ex.all_events()},
        )
        inline_partial = detect_with_inline(
            res.assignments["inline"],
            marks,
            finalized=set(res.finalization_times["inline"]),
        )
        return online, inline_final, inline_partial

    online, inline_final, inline_partial = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_header("E9b: conjunctive predicate detection")
    print(f"  online (vector clock): found={online.found}")
    print(f"  inline, all finalized: found={inline_final.found}")
    print(f"  inline, mid-run cut:   found={inline_partial.found}")
    # once everything is finalized the answers agree
    assert online.found == inline_final.found
    # the mid-run cut can only under-detect, never invent a witness
    if inline_partial.found:
        assert online.found


def test_e9_replay(benchmark):
    def run():
        res = run_sim(seed=3)
        order = replay_schedule(res.assignments["inline"])
        return res.execution, order

    ex, order = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("E9c: replay schedule from inline timestamps")
    print(f"  events scheduled: {len(order)}; causal: "
          f"{is_causal_schedule(ex, order)}")
    assert is_causal_schedule(ex, order)


def test_e9_detection_lag(benchmark):
    """How much later does the inline detector fire? (Section 6's
    'detected eventually' made quantitative.)"""
    from repro.applications.detection_latency import detection_lag

    def sweep():
        rows = []
        for seed in (1, 2, 3, 4, 5):
            res = run_sim(seed=seed, events=20)
            ex = res.execution
            marks = {
                p: list(range(3, len(ex.events_at(p)) + 1))
                for p in range(1, ex.n_processes)
                if len(ex.events_at(p)) >= 3
            }
            if not marks:
                continue
            lag = detection_lag(res, marks, "inline")
            rows.append(
                (seed, lag.online_time, lag.inline_time, lag.lag,
                 res.duration)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header("E9e: predicate first-detection time, online vs inline")
    print(
        format_table(
            ["seed", "online detects at", "inline detects at",
             "lag (virtual time)", "run duration"],
            [
                [s, o if o is not None else "-",
                 i if i is not None else "-",
                 l if l is not None else "-", d]
                for s, o, i, l, d in rows
            ],
        )
    )
    for _s, online, inline, lag, duration in rows:
        if inline is not None:
            assert online is not None and inline >= online
            assert lag is not None and 0 <= lag <= duration


def test_e9_conflict_detection(benchmark):
    def run():
        res = run_sim(seed=4)
        ex = res.execution
        # every send event is an 'update' to a key named by parity
        updates = {
            ev.eid: f"k{ev.eid.proc % 2}"
            for ev in ex.all_events()
            if ev.is_send
        }
        report_final = conflict_resolution_status(
            res.assignments["inline"], updates
        )
        report_partial = conflict_resolution_status(
            res.assignments["inline"],
            updates,
            finalized=set(res.finalization_times["inline"]),
        )
        return report_final, report_partial

    final, partial = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("E9d: concurrent-update detection")
    print(f"  true conflicts:            {len(final.true_conflicts)}")
    print(f"  detected (all finalized):  {len(final.detected_conflicts)}")
    print(f"  detected (mid-run):        {len(partial.detected_conflicts)} "
          f"(+{partial.undecided_pairs} pairs undecided)")
    assert final.exact
    assert not partial.spurious
    assert partial.detected_conflicts <= final.true_conflicts
